//! The proportion/period dispatcher.
//!
//! This is the "low-level scheduler" of §3.1: at each dispatch point it
//! picks the runnable thread with the highest goodness, charges the running
//! thread for the CPU it consumed, throttles threads that have used their
//! allocation for the current period, and rolls per-thread periods when
//! their timers expire.  It is a pure state machine over an explicit clock
//! (`now_us`), driven either by the discrete-event simulator or by the
//! wall-clock executor.
//!
//! Internally threads live in dense slot-indexed storage (mirroring the
//! controller's `SlotTable`) and every runnable thread is kept ranked in a
//! goodness-indexed run queue, so a dispatch decision is an `O(1)` peek
//! plus an `O(log n)` re-rank instead of the original full scan over every
//! registered thread.  Re-ranking is lazy: a thread's queue entry is only
//! touched by the state changes that can affect it (block/unblock,
//! throttle, charge, reservation change, pick), so an idle dispatcher —
//! the paper's "no work unless at least one timer has expired" case —
//! re-dispatches in constant time.
//!
//! # Dense handles and the span fast path
//!
//! The `ThreadId → slot` resolution happens once, at the edge: every
//! public id-keyed method resolves through `by_id` exactly once, and from
//! there the hot loop runs entirely on dense `u32` slots — the run queue,
//! the [`TimerList`] (slot-keyed, so a popped expiry is already a slot)
//! and the watch list all speak slots.  The steady-state span loop the
//! simulator drives ([`Dispatcher::dispatch`] →
//! [`Dispatcher::charge_span`] → [`Dispatcher::advance_to`]) therefore
//! touches no maps at all, and two further mechanisms remove the remaining
//! per-span work on an uncontended CPU:
//!
//! * **The next-quantum cache.** `queue_gen` counts every mutation that
//!   can change the run-queue root (any re-rank or removal).  When a
//!   dispatch picks a reserved thread that is *still* at the root after
//!   its own re-rank, the decision is cached by recording the post-pick
//!   generation; as long as the generation is unchanged and the clock has
//!   not reached the thread's period boundary, the next dispatch re-issues
//!   the pick in `O(1)` without touching the heap.  A fast pick bumps the
//!   pick sequence on the entry but leaves its heap key stale — safe
//!   because the cached thread is by construction the most recent pick, so
//!   its true sequence exceeds every other thread's and the stale (older)
//!   key loses exactly the same tie-breaks; the next slow dispatch
//!   re-ranks it with the true key.
//! * **Batched span charging.** [`Dispatcher::charge_span`] accumulates
//!   consecutive charges to the cached thread in `span_pending_us` and
//!   settles them into the account in one batch, but only while the
//!   deferral is invisible: [`crate::settle::span_settle_reason`] forces a
//!   settle on any goodness crossing (best-effort), period boundary,
//!   throttle edge or zero-length charge, and every other operation that
//!   could read or roll the account ([`Dispatcher::dispatch`]'s slow path,
//!   [`Dispatcher::charge`], block/unblock, migration, re-reservation,
//!   [`Dispatcher::sync_all`], [`Dispatcher::drain_usage_changes`])
//!   settles on entry.  Invariant: while `span_pending_us > 0`, the
//!   pending slot's account has strictly positive remaining budget after
//!   the batch and its next period boundary is still in the future at
//!   every accumulation instant, so the batch always lands in the period
//!   it was consumed in.  `advance_to` never settles: the cached thread is
//!   running (never throttled), so no armed timer can name its slot, and
//!   other slots' rollovers cannot touch its account.
//!
//! Both mechanisms are gated to lazy-rollover mode (the calendar
//! simulator); the eager reference path is untouched, and the golden
//! SimStats captures pin the whole optimisation as observationally
//! invisible.
//!
//! Both mechanisms are counted by the always-on [`FastPathStats`]
//! (exposed per CPU by [`Dispatcher::fast_path_stats`] and machine-wide
//! by [`crate::Machine::fast_path_stats`]): every dispatch decision is
//! either a `quantum_cache_hits` (served by the cache in `O(1)`) or a
//! `quantum_cache_misses` (slow path), and every forced settle lands in
//! exactly one of `settles_goodness`, `settles_period_boundary`,
//! `settles_throttle_edge` or `settles_zero_span` — the
//! [`crate::settle::SettleReason`] taxonomy.  With a telemetry recorder
//! attached ([`Dispatcher::set_telemetry`]) the same points also emit
//! structured trace events (`quantum_cache_hit` / `quantum_cache_miss`
//! instants, `settle:<reason>` points, `period_rollover` marks).

use crate::accounting::UsageAccount;
use crate::admission::AdmissionControl;
use crate::error::SchedError;
use crate::goodness::{best_effort_goodness, rbs_goodness};
use crate::reservation::Reservation;
use crate::runqueue::{RunKey, RunQueue};
use crate::settle::{charge_exhausts, span_settle_reason, SettleReason};
use crate::timerlist::TimerList;
use crate::types::{Proportion, ThreadId, ThreadState};
use rrs_telemetry::{Recorder, SettleCause, TraceEventKind};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// How a thread is scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadClass {
    /// Scheduled by the RBS with a proportion/period reservation.
    Reserved(Reservation),
    /// Scheduled best-effort (the default Linux policy); only runs when no
    /// reserved thread is runnable.
    BestEffort,
}

/// Configuration for the dispatcher.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DispatcherConfig {
    /// The dispatch (timer) interval in microseconds; the paper's prototype
    /// uses 1 ms.
    pub dispatch_interval_us: u64,
    /// Admission threshold for reservations.
    pub admission_threshold_ppt: u32,
    /// Modelled cost of one dispatch decision (`schedule()` plus
    /// `do_timers()`), in microseconds.  Used for the Figure 8 overhead
    /// experiment; set to 0.0 to disable overhead modelling.
    pub dispatch_cost_us: f64,
    /// Additional modelled cost per context switch (cache and TLB refill),
    /// in microseconds.
    pub context_switch_cost_us: f64,
    /// Time slice granted to best-effort threads, in microseconds.
    pub best_effort_slice_us: u64,
    /// Roll reservation periods lazily (event-calendar mode).
    ///
    /// In the default eager mode every reserved thread keeps a period timer
    /// armed and [`Dispatcher::advance_to`] processes each boundary as the
    /// clock passes it — `O(threads)` timer work per period, even for
    /// threads nobody touches.  In lazy mode only *throttled* threads arm a
    /// timer (at their replenishment boundary, which is the only boundary
    /// that can change a dispatch decision); every other account is brought
    /// up to date in one `O(1)` batch
    /// ([`crate::UsageAccount::roll_periods`]) when the thread is next
    /// touched (picked, charged, blocked, unblocked, re-reserved, migrated)
    /// or explicitly synced ([`Dispatcher::sync_all`],
    /// [`Dispatcher::drain_usage_changes`]).
    ///
    /// Two deliberate semantic differences from the eager path: boundaries
    /// stay on the exact periodic grid anchored at the last reservation
    /// change (the eager path re-arms from the drain instant, so late
    /// drains drift), and a thread that sits runnable-but-starved across
    /// `k` boundaries counts `k` missed deadlines (the eager path counts
    /// one per processed timer, so a fast-forwarded gap undercounts).
    /// Usage queries via [`Dispatcher::usage`] / [`Dispatcher::usage_ref`] /
    /// [`Dispatcher::for_each_usage`] may lag until the entry is synced.
    #[serde(default)]
    pub lazy_rollovers: bool,
}

impl Default for DispatcherConfig {
    fn default() -> Self {
        Self {
            dispatch_interval_us: 1_000,
            admission_threshold_ppt: AdmissionControl::DEFAULT_THRESHOLD_PPT,
            // Calibrated so that a 250 µs dispatch interval costs ≈ 2.7 % of
            // the CPU, matching the knee reported in Figure 8.
            dispatch_cost_us: 6.8,
            context_switch_cost_us: 1.9,
            best_effort_slice_us: 10_000,
            lazy_rollovers: false,
        }
    }
}

/// Counters describing what the dispatcher has done so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DispatchStats {
    /// Number of dispatch decisions taken.
    pub dispatches: u64,
    /// Number of dispatch decisions that switched to a different thread.
    pub context_switches: u64,
    /// Number of per-thread period boundaries processed.
    pub period_rollovers: u64,
    /// Number of missed deadlines detected at period boundaries.
    pub deadlines_missed: u64,
    /// Modelled scheduling overhead accumulated so far, in microseconds.
    pub overhead_us: f64,
    /// Time during which no thread was runnable, in microseconds.
    pub idle_us: u64,
}

/// Fast-path effectiveness counters, kept separate from [`DispatchStats`]
/// so the golden stats captures (which pin the scheduling *outcome*) stay
/// byte-identical while the *mechanism* remains observable.
///
/// These are the counter names the module docs' fast-path invariants refer
/// to: `quantum_cache_hits` / `quantum_cache_misses` split every dispatch
/// decision by whether the next-quantum cache served it, and the four
/// `settles_*` counters split batched span settles by their
/// [`SettleReason`].  Always counted (an increment is cheaper than a
/// branch to skip it); aggregated machine-wide by
/// [`crate::Machine::fast_path_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FastPathStats {
    /// Dispatch decisions served by the next-quantum cache in `O(1)`.
    pub quantum_cache_hits: u64,
    /// Dispatch decisions that took the slow path (queue peek + re-rank).
    pub quantum_cache_misses: u64,
    /// Span settles forced by a best-effort goodness re-rank.
    pub settles_goodness: u64,
    /// Span settles forced by reaching the thread's period boundary.
    pub settles_period_boundary: u64,
    /// Span settles forced by budget exhaustion (the throttle edge).
    pub settles_throttle_edge: u64,
    /// Span settles forced by a zero-length charge.
    pub settles_zero_span: u64,
}

impl FastPathStats {
    /// Accumulates another CPU's counters into this one.
    pub fn merge(&mut self, other: &FastPathStats) {
        self.quantum_cache_hits += other.quantum_cache_hits;
        self.quantum_cache_misses += other.quantum_cache_misses;
        self.settles_goodness += other.settles_goodness;
        self.settles_period_boundary += other.settles_period_boundary;
        self.settles_throttle_edge += other.settles_throttle_edge;
        self.settles_zero_span += other.settles_zero_span;
    }

    /// `hits / (hits + misses)`, or 0 when no dispatch has run.
    pub fn hit_rate(&self) -> f64 {
        let total = self.quantum_cache_hits + self.quantum_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.quantum_cache_hits as f64 / total as f64
        }
    }

    /// Settles of every cause combined.
    pub fn settles_total(&self) -> u64 {
        self.settles_goodness
            + self.settles_period_boundary
            + self.settles_throttle_edge
            + self.settles_zero_span
    }
}

/// The result of one dispatch decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchOutcome {
    /// The thread selected to run, or `None` if nothing is runnable.
    pub thread: Option<ThreadId>,
    /// How long the selection is valid for, in microseconds: the caller
    /// should run the thread (or idle) for at most this long before calling
    /// [`Dispatcher::advance_to`] and dispatching again.
    pub quantum_us: u64,
}

#[derive(Debug)]
struct ThreadEntry {
    id: ThreadId,
    class: ThreadClass,
    state: ThreadState,
    account: UsageAccount,
    remaining_slice_us: u64,
    /// Monotonic sequence number of the last time this thread was picked;
    /// used to round-robin among equal-goodness best-effort threads.
    last_picked_seq: u64,
    /// Whether this entry currently contributes to
    /// [`Dispatcher::runnable_be_with_slice`]; kept on the entry so the
    /// counter can be adjusted incrementally on any state change.
    counted_be_slice: bool,
    /// Lazy mode: the earliest period boundary not yet rolled into the
    /// account.  Boundaries sit on the exact periodic grid anchored at the
    /// last reservation change, so `[Dispatcher::sync_entry]` can batch any
    /// backlog in `O(1)`.  Unused (0) for best-effort threads and in eager
    /// mode, where the timer list is authoritative.
    next_boundary_us: u64,
    /// The last usage ratio handed out through
    /// [`Dispatcher::drain_usage_changes`]; a thread is only re-reported
    /// when the ratio moves.  Starts at 1.0 — the controller's default
    /// assumption for a thread it has never heard about.
    last_reported_ratio: f64,
    /// Whether this entry currently sits on [`Dispatcher::watch_list`].
    watched: bool,
}

/// A thread lifted out of one dispatcher for insertion into another — the
/// payload of a cross-CPU migration.
///
/// Carries everything the destination CPU needs to continue the thread's
/// current period exactly where the source CPU left it: the class
/// (reservation), run state, the full usage account (budget, consumption,
/// lifetime totals), the remaining best-effort slice and the armed period
/// boundary.  Obtained from [`Dispatcher::take_thread`], consumed by
/// [`Dispatcher::inject_thread`].
#[derive(Debug, Clone, Copy)]
pub struct MigratedThread {
    /// The migrating thread's id.
    pub id: ThreadId,
    class: ThreadClass,
    state: ThreadState,
    account: UsageAccount,
    remaining_slice_us: u64,
    /// The expiry the source CPU had armed for the thread's next period
    /// boundary.  Carried verbatim so a mid-period reservation change
    /// (which re-arms from the change instant, not the period start)
    /// survives migration.
    next_boundary_us: Option<u64>,
}

impl MigratedThread {
    /// The thread's scheduling class (reservation or best-effort).
    pub fn class(&self) -> ThreadClass {
        self.class
    }

    /// The thread's run state at the moment it was taken.
    pub fn state(&self) -> ThreadState {
        self.state
    }

    /// The thread's usage account at the moment it was taken.
    pub fn account(&self) -> UsageAccount {
        self.account
    }
}

/// The reservation-based dispatcher.
///
/// # Examples
///
/// ```
/// use rrs_scheduler::{Dispatcher, DispatcherConfig, Period, Proportion, Reservation, ThreadClass, ThreadId};
///
/// let mut d = Dispatcher::new(DispatcherConfig::default());
/// let r = Reservation::new(Proportion::from_ppt(500), Period::from_millis(10));
/// d.add_thread(ThreadId(1), ThreadClass::Reserved(r)).unwrap();
/// let outcome = d.dispatch();
/// assert_eq!(outcome.thread, Some(ThreadId(1)));
/// ```
#[derive(Debug)]
pub struct Dispatcher {
    config: DispatcherConfig,
    admission: AdmissionControl,
    /// Dense slot-indexed thread storage; freed slots are reused LIFO.
    entries: Vec<Option<ThreadEntry>>,
    free: Vec<u32>,
    /// Id → dense slot, and the id-ordered iteration view.
    by_id: BTreeMap<ThreadId, u32>,
    /// Every runnable thread, ranked by the dispatch key.
    runnable: RunQueue,
    /// Number of registered best-effort threads.
    be_count: usize,
    /// Number of runnable best-effort threads with slice remaining — the
    /// `O(1)` form of the "does anything still have a slice?" scan that
    /// guards the Linux-style goodness recalculation pass.
    runnable_be_with_slice: usize,
    /// `true` while some best-effort slice may sit below its full value;
    /// when `false` the recalculation pass would be a no-op and is skipped,
    /// so repeated idle dispatches do no per-thread work.
    be_slices_dirty: bool,
    /// Running sum of reserved proportions, in parts per thousand.
    reserved_ppt: u32,
    timers: TimerList,
    now_us: u64,
    running: Option<ThreadId>,
    pick_seq: u64,
    stats: DispatchStats,
    missed_since_last_poll: u64,
    /// Dense slots whose usage ratio may have moved since the last
    /// [`Dispatcher::drain_usage_changes`] — the changed-only usage feed
    /// for the controller.  May hold stale slots (cleared on drain).
    watch_list: Vec<u32>,
    /// Generation counter bumped on every mutation that can change the run
    /// queue's composition or ranking (any re-rank or removal).  The
    /// next-quantum cache is valid only while it is unchanged.
    queue_gen: u64,
    /// Dense slot of the most recently dispatched thread — the implicit
    /// target of [`Dispatcher::charge_span`] and
    /// [`Dispatcher::block_span`].  Cleared when that thread leaves the
    /// dispatcher or a dispatch goes idle.
    span_slot: Option<u32>,
    /// `Some(queue_gen)` recorded when a dispatch armed the next-quantum
    /// cache; the cache is live while it equals the current `queue_gen`
    /// (the counter only grows, so any mutation disarms it for good).
    quantum_cache_gen: Option<u64>,
    /// Span charges accumulated against `span_slot`'s account but not yet
    /// settled into it (lazy mode only; see the module docs).
    span_pending_us: u64,
    /// Always-on fast-path effectiveness counters (cache hits/misses,
    /// settles by reason); separate from `stats` so the golden captures
    /// stay stable.
    fast_path: FastPathStats,
    /// Trace-event sink when telemetry is enabled; `None` costs one branch
    /// per instrumentation point.
    telemetry: Option<Arc<Recorder>>,
    /// The CPU index recorded on this dispatcher's trace events.
    telemetry_cpu: u32,
}

impl Dispatcher {
    /// Creates a dispatcher with the given configuration.
    pub fn new(config: DispatcherConfig) -> Self {
        Self {
            admission: AdmissionControl::with_threshold(Proportion::from_ppt(
                config.admission_threshold_ppt,
            )),
            config,
            entries: Vec::new(),
            free: Vec::new(),
            by_id: BTreeMap::new(),
            runnable: RunQueue::new(),
            be_count: 0,
            runnable_be_with_slice: 0,
            be_slices_dirty: false,
            reserved_ppt: 0,
            timers: TimerList::new(),
            now_us: 0,
            running: None,
            pick_seq: 0,
            stats: DispatchStats::default(),
            missed_since_last_poll: 0,
            watch_list: Vec::new(),
            queue_gen: 0,
            span_slot: None,
            quantum_cache_gen: None,
            span_pending_us: 0,
            fast_path: FastPathStats::default(),
            telemetry: None,
            telemetry_cpu: 0,
        }
    }

    /// The always-on fast-path effectiveness counters.
    pub fn fast_path_stats(&self) -> FastPathStats {
        self.fast_path
    }

    /// Attaches (or detaches) a telemetry recorder; `cpu` is the index
    /// stamped on this dispatcher's trace events.
    pub fn set_telemetry(&mut self, recorder: Option<Arc<Recorder>>, cpu: u32) {
        self.telemetry = recorder;
        self.telemetry_cpu = cpu;
    }

    /// Current scheduler time in microseconds.
    pub fn now_us(&self) -> u64 {
        self.now_us
    }

    /// The configuration the dispatcher was created with.
    pub fn config(&self) -> DispatcherConfig {
        self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> DispatchStats {
        self.stats
    }

    /// Number of threads known to the dispatcher.
    pub fn thread_count(&self) -> usize {
        self.by_id.len()
    }

    /// All registered thread ids, in id order, without allocating.
    pub fn thread_ids(&self) -> impl Iterator<Item = ThreadId> + '_ {
        self.by_id.keys().copied()
    }

    /// Sum of the proportions of all reserved threads, in parts per
    /// thousand.  Unlike [`Proportion`], this is not clamped at 1000, so an
    /// oversubscribed system reports a value above 1000.  Maintained
    /// incrementally, so the admission test and least-loaded placement stay
    /// `O(1)` per query.
    pub fn total_reserved_ppt(&self) -> u32 {
        self.reserved_ppt
    }

    /// Sum of the proportions of all reserved threads, clamped to the full
    /// CPU.
    pub fn total_reserved(&self) -> Proportion {
        Proportion::from_ppt(self.total_reserved_ppt())
    }

    /// Returns `true` if the sum of reservations exceeds the admission
    /// threshold.
    pub fn is_overloaded(&self) -> bool {
        self.total_reserved_ppt() > self.admission.threshold().ppt()
    }

    /// The admission controller (threshold and headroom queries).
    pub fn admission(&self) -> AdmissionControl {
        self.admission
    }

    /// Resolves an id to its dense slot and entry, for the mutating paths.
    fn entry_mut_of(&mut self, id: ThreadId) -> Result<(u32, &mut ThreadEntry), SchedError> {
        let &idx = self.by_id.get(&id).ok_or(SchedError::UnknownThread(id))?;
        let entry = self.entries[idx as usize]
            .as_mut()
            .expect("by_id maps every id to an occupied slot (unlink removes both together)");
        Ok((idx, entry))
    }

    fn entry_of(&self, id: ThreadId) -> Option<&ThreadEntry> {
        let &idx = self.by_id.get(&id)?;
        self.entries[idx as usize].as_ref()
    }

    /// Stores a fresh entry, indexes it, and returns its dense slot.
    fn link(&mut self, entry: ThreadEntry) -> u32 {
        let idx = match self.free.pop() {
            Some(i) => i,
            None => {
                self.entries.push(None);
                u32::try_from(self.entries.len() - 1).expect("fewer than 2^32 threads")
            }
        };
        match entry.class {
            ThreadClass::Reserved(r) => self.reserved_ppt += r.proportion.ppt(),
            ThreadClass::BestEffort => self.be_count += 1,
        }
        let reserved = matches!(entry.class, ThreadClass::Reserved(_));
        self.by_id.insert(entry.id, idx);
        self.entries[idx as usize] = Some(entry);
        self.reindex(idx);
        if reserved {
            // A fresh reservation's ratio is about to diverge from whatever
            // the controller last saw, so it goes straight on watch.
            self.watch(idx);
        }
        idx
    }

    /// Removes the entry at `idx` from every index and frees the slot.
    fn unlink(&mut self, idx: u32) -> ThreadEntry {
        let entry = self.entries[idx as usize]
            .take()
            .expect("unlink is only called with a slot from by_id, which tracks occupied slots");
        self.queue_gen += 1;
        if self.span_slot == Some(idx) {
            debug_assert_eq!(self.span_pending_us, 0, "unlinked slot with pending charge");
            self.span_slot = None;
            self.span_pending_us = 0;
        }
        self.runnable.remove(idx);
        if entry.counted_be_slice {
            self.runnable_be_with_slice -= 1;
        }
        match entry.class {
            ThreadClass::Reserved(r) => self.reserved_ppt -= r.proportion.ppt(),
            ThreadClass::BestEffort => self.be_count -= 1,
        }
        self.by_id.remove(&entry.id);
        self.free.push(idx);
        entry
    }

    /// Re-derives the entry's run-queue membership, rank and recalc-counter
    /// contribution from its current state.  Called after every mutation
    /// that can affect them; `O(log n)`.  Conservatively bumps `queue_gen`
    /// (disarming the next-quantum cache) even when nothing changes.
    fn reindex(&mut self, idx: u32) {
        self.queue_gen += 1;
        let Some(entry) = self.entries[idx as usize].as_mut() else {
            return;
        };
        let runnable = entry.state.is_runnable();
        let counted = runnable
            && matches!(entry.class, ThreadClass::BestEffort)
            && entry.remaining_slice_us > 0;
        if counted != entry.counted_be_slice {
            entry.counted_be_slice = counted;
            if counted {
                self.runnable_be_with_slice += 1;
            } else {
                self.runnable_be_with_slice -= 1;
            }
        }
        if runnable {
            let goodness = match entry.class {
                ThreadClass::Reserved(r) => rbs_goodness(r.period),
                ThreadClass::BestEffort => best_effort_goodness(entry.remaining_slice_us),
            };
            let key = RunKey {
                neg_goodness: -goodness,
                last_picked_seq: entry.last_picked_seq,
                id: entry.id,
            };
            self.runnable.upsert(idx, key);
        } else {
            self.runnable.remove(idx);
        }
    }

    /// Registers a thread.  Reserved threads are subject to admission
    /// control; the new thread starts Ready with a full budget and a period
    /// timer armed at `now + period`.
    pub fn add_thread(&mut self, id: ThreadId, class: ThreadClass) -> Result<(), SchedError> {
        if self.by_id.contains_key(&id) {
            return Err(SchedError::DuplicateThread(id));
        }
        let mut next_boundary_us = 0;
        let account = match class {
            ThreadClass::Reserved(r) => {
                self.admission
                    .try_admit(self.total_reserved(), r.proportion)?;
                next_boundary_us = self.now_us + r.period.as_micros();
                UsageAccount::new(self.now_us, r.budget_micros())
            }
            ThreadClass::BestEffort => UsageAccount::new(self.now_us, 0),
        };
        let mut entry = ThreadEntry {
            id,
            class,
            state: ThreadState::Ready,
            account,
            remaining_slice_us: self.config.best_effort_slice_us,
            last_picked_seq: 0,
            counted_be_slice: false,
            next_boundary_us,
            last_reported_ratio: 1.0,
            watched: false,
        };
        entry.account.mark_runnable();
        let reserved = matches!(class, ThreadClass::Reserved(_));
        let idx = self.link(entry);
        if reserved && !self.config.lazy_rollovers {
            self.timers.arm(idx, id, next_boundary_us);
        }
        Ok(())
    }

    /// Registers a thread whose reservation was already admitted by a
    /// higher authority (the adaptive controller), bypassing this
    /// dispatcher's own admission test.
    ///
    /// The controller squishes allocations instead of rejecting them, so
    /// its running jobs can legitimately sit at the admission threshold;
    /// re-checking here would spuriously reject late arrivals.  Fails only
    /// on a duplicate id.
    pub fn add_thread_preadmitted(
        &mut self,
        id: ThreadId,
        reservation: Reservation,
    ) -> Result<(), SchedError> {
        self.add_thread(id, ThreadClass::BestEffort)?;
        self.set_reservation(id, reservation)
            .expect("thread was just added");
        Ok(())
    }

    /// Lifts a thread out of this dispatcher for migration to another CPU,
    /// preserving its class, run state and usage account.
    ///
    /// A running thread is demoted to Ready (it is not running on the
    /// destination CPU); its period timer is cancelled here and re-armed by
    /// [`Dispatcher::inject_thread`].
    pub fn take_thread(&mut self, id: ThreadId) -> Result<MigratedThread, SchedError> {
        self.settle_span();
        let &idx = self.by_id.get(&id).ok_or(SchedError::UnknownThread(id))?;
        let next_boundary_us = if self.config.lazy_rollovers {
            // Settle any boundary backlog on this CPU's clock, then hand the
            // (strictly future) grid boundary to the destination.
            self.sync_entry(idx);
            self.entries[idx as usize]
                .as_ref()
                .filter(|e| matches!(e.class, ThreadClass::Reserved(_)))
                .map(|e| e.next_boundary_us)
        } else {
            self.timers.expiry_of(idx)
        };
        self.timers.cancel(idx);
        if self.running == Some(id) {
            self.running = None;
        }
        let entry = self.unlink(idx);
        let state = match entry.state {
            ThreadState::Running => ThreadState::Ready,
            other => other,
        };
        Ok(MigratedThread {
            id,
            class: entry.class,
            state,
            account: entry.account,
            remaining_slice_us: entry.remaining_slice_us,
            next_boundary_us,
        })
    }

    /// Inserts a migrated thread, continuing its current period.
    ///
    /// The period timer is re-armed at exactly the boundary the source CPU
    /// had scheduled (falling back to `period_start + period` for
    /// payloads with no armed timer); if that boundary has already passed
    /// on this CPU's clock it fires at the next
    /// [`Dispatcher::advance_to`].  Admission is not re-checked: placement
    /// is the migrating authority's responsibility, exactly like the
    /// controller's actuation path.
    pub fn inject_thread(&mut self, thread: MigratedThread) -> Result<(), SchedError> {
        if self.by_id.contains_key(&thread.id) {
            return Err(SchedError::DuplicateThread(thread.id));
        }
        let lazy = self.config.lazy_rollovers;
        let mut next_boundary_us = 0;
        let mut eager_boundary = None;
        if let ThreadClass::Reserved(r) = thread.class {
            let boundary = thread
                .next_boundary_us
                .unwrap_or(thread.account.period_start_us + r.period.as_micros());
            if lazy {
                next_boundary_us = boundary;
            } else {
                eager_boundary = Some(boundary.max(self.now_us + 1));
            }
        }
        if matches!(thread.class, ThreadClass::BestEffort)
            && thread.remaining_slice_us < self.config.best_effort_slice_us
        {
            self.be_slices_dirty = true;
        }
        let idx = self.link(ThreadEntry {
            id: thread.id,
            class: thread.class,
            state: thread.state,
            account: thread.account,
            remaining_slice_us: thread.remaining_slice_us,
            last_picked_seq: 0,
            counted_be_slice: false,
            next_boundary_us,
            last_reported_ratio: 1.0,
            watched: false,
        });
        if let Some(boundary) = eager_boundary {
            self.timers.arm(idx, thread.id, boundary);
        }
        if lazy {
            // Boundaries that already passed on this CPU's clock roll
            // immediately; a still-throttled arrival re-arms its release.
            self.sync_entry(idx);
            if let Some(entry) = self.entries[idx as usize].as_ref() {
                if entry.state == ThreadState::Throttled {
                    let boundary = entry.next_boundary_us;
                    self.timers.arm(idx, thread.id, boundary);
                }
            }
        }
        Ok(())
    }

    /// The earliest armed period timer, if any — the next instant at which
    /// an idle CPU has work to do.
    pub fn next_timer_expiry(&self) -> Option<u64> {
        self.timers.next_expiry()
    }

    /// Re-books idle time after an idle dispatch.
    ///
    /// An idle [`Dispatcher::dispatch`] charges its returned quantum to
    /// [`DispatchStats::idle_us`] on the assumption that the caller idles
    /// for exactly that long.  A lockstep driver may advance the shared
    /// clock by a different amount — less when another CPU's thread
    /// yielded early, more when it fast-forwards across a quiet gap — and
    /// calls this with what was recorded and what actually elapsed so the
    /// statistic stays truthful.
    pub fn rebook_idle_us(&mut self, recorded_us: u64, actual_us: u64) {
        self.stats.idle_us = self.stats.idle_us.saturating_sub(recorded_us) + actual_us;
    }

    /// Removes a thread from the dispatcher.
    pub fn remove_thread(&mut self, id: ThreadId) -> Result<(), SchedError> {
        self.settle_span();
        let Some(&idx) = self.by_id.get(&id) else {
            return Err(SchedError::UnknownThread(id));
        };
        if self.config.lazy_rollovers {
            // Settle the departing thread's boundary backlog so the global
            // rollover and miss statistics don't lose its final periods.
            self.sync_entry(idx);
        }
        // Cancel before the unlink frees (and possibly recycles) the slot
        // the timer list is keyed by.
        self.timers.cancel(idx);
        self.unlink(idx);
        if self.running == Some(id) {
            self.running = None;
        }
        Ok(())
    }

    /// Changes a thread's reservation — the actuation path used by the
    /// controller every controller period.  The change takes effect
    /// immediately for the budget of future periods; the current period's
    /// budget is adjusted proportionally if it grows.
    ///
    /// Admission is *not* re-checked here: the controller is responsible for
    /// keeping the total under the threshold (it squishes allocations when
    /// the system would otherwise be oversubscribed).
    pub fn set_reservation(
        &mut self,
        id: ThreadId,
        reservation: Reservation,
    ) -> Result<(), SchedError> {
        let now = self.now_us;
        let lazy = self.config.lazy_rollovers;
        self.settle_span();
        let &slot = self.by_id.get(&id).ok_or(SchedError::UnknownThread(id))?;
        if lazy {
            // Settle the old reservation's boundary backlog before the grid
            // is re-anchored below.
            self.sync_entry(slot);
        }
        let (idx, entry) = self.entry_mut_of(id)?;
        let old_class = entry.class;
        entry.class = ThreadClass::Reserved(reservation);
        let new_budget = reservation.budget_micros();
        // Growing the budget mid-period can un-throttle the thread; a
        // shrinking budget only applies from the next period so work already
        // granted is not clawed back.
        if new_budget > entry.account.budget_us {
            entry.account.budget_us = new_budget;
            if entry.state == ThreadState::Throttled && !entry.account.exhausted() {
                entry.state = ThreadState::Ready;
                entry.account.mark_runnable();
            }
        }
        let period_changed =
            !matches!(old_class, ThreadClass::Reserved(r) if r.period == reservation.period);
        if period_changed {
            // New period length: re-anchor the boundary grid from now.
            entry.next_boundary_us = now + reservation.period.as_micros();
        }
        let throttled = entry.state == ThreadState::Throttled;
        let next_boundary_us = entry.next_boundary_us;
        match old_class {
            ThreadClass::Reserved(r) => self.reserved_ppt -= r.proportion.ppt(),
            ThreadClass::BestEffort => self.be_count -= 1,
        }
        self.reserved_ppt += reservation.proportion.ppt();
        if lazy {
            // Restore the lazy timer invariant: exactly the throttled
            // threads keep a release timer armed, at their next boundary.
            if throttled {
                self.timers.arm(slot, id, next_boundary_us);
            } else {
                self.timers.cancel(slot);
            }
        } else if period_changed {
            // Eager mode: re-arm the period timer from now.
            self.timers
                .arm(slot, id, now + reservation.period.as_micros());
        }
        self.reindex(idx);
        self.watch(idx);
        Ok(())
    }

    /// Returns a thread's current reservation, if it is reserved.
    pub fn reservation(&self, id: ThreadId) -> Option<Reservation> {
        match self.entry_of(id)?.class {
            ThreadClass::Reserved(r) => Some(r),
            ThreadClass::BestEffort => None,
        }
    }

    /// Returns a thread's current state.
    pub fn thread_state(&self, id: ThreadId) -> Option<ThreadState> {
        self.entry_of(id).map(|t| t.state)
    }

    /// Returns a copy of a thread's usage account.
    pub fn usage(&self, id: ThreadId) -> Option<UsageAccount> {
        self.entry_of(id).map(|t| t.account)
    }

    /// Borrows a thread's usage account without copying — the controller's
    /// per-cycle accounting read.
    pub fn usage_ref(&self, id: ThreadId) -> Option<&UsageAccount> {
        self.entry_of(id).map(|t| &t.account)
    }

    /// Visits every thread's usage account in dense slot order (admission
    /// order) in one pass without allocating.  Drives the controller's
    /// usage feedback in the simulator and the wall-clock executor; the
    /// controller's per-job stores are order-independent.  Like
    /// [`Dispatcher::usage`], in lazy mode an account may lag by an
    /// unsettled boundary backlog or span batch until the next sync.
    pub fn for_each_usage(&self, mut f: impl FnMut(ThreadId, &UsageAccount)) {
        for entry in self.entries.iter().flatten() {
            f(entry.id, &entry.account);
        }
    }

    /// Marks a thread as blocked (waiting on I/O or a queue).
    pub fn block(&mut self, id: ThreadId) -> Result<(), SchedError> {
        self.settle_span();
        let &slot = self.by_id.get(&id).ok_or(SchedError::UnknownThread(id))?;
        self.block_slot(slot)
    }

    /// Blocks the thread picked by the last [`Dispatcher::dispatch`]
    /// without resolving its id — the simulator's hot-path pairing when a
    /// span ends in a voluntary block.  Returns the blocked thread's dense
    /// slot so the caller can hand it back to
    /// [`Dispatcher::unblock_slot`] at wake-up time.
    pub fn block_span(&mut self) -> u32 {
        let idx = self
            .span_slot
            .expect("block_span without a dispatched span");
        self.settle_span();
        self.block_slot(idx).expect("span slot is live");
        idx
    }

    fn block_slot(&mut self, idx: u32) -> Result<(), SchedError> {
        if self.config.lazy_rollovers {
            // Roll boundaries while the thread still counts as runnable so
            // the was-runnable miss accounting matches the eager path.
            self.sync_entry(idx);
        }
        let entry = self.entries[idx as usize]
            .as_mut()
            .expect("block_slot receives a slot from the current span or by_id, both occupied");
        let id = entry.id;
        if entry.state == ThreadState::Exited {
            return Err(SchedError::InvalidState(id, "thread has exited"));
        }
        entry.state = ThreadState::Blocked;
        if self.config.lazy_rollovers {
            // A blocked thread cannot be dispatched, so its replenishment is
            // no longer an event anybody needs a timer for.
            self.timers.cancel(idx);
        }
        if self.running == Some(id) {
            self.running = None;
        }
        self.reindex(idx);
        Ok(())
    }

    /// Wakes a blocked thread.  Threads that are throttled stay throttled
    /// until their next period even if woken.
    pub fn unblock(&mut self, id: ThreadId) -> Result<(), SchedError> {
        self.settle_span();
        let &slot = self.by_id.get(&id).ok_or(SchedError::UnknownThread(id))?;
        self.unblock_inner(slot);
        Ok(())
    }

    /// Wakes the blocked thread in dense slot `idx` without an id → slot
    /// lookup — the simulator's in-window wake path.  `id` is the identity
    /// the caller believes occupies the slot; slots are stable for a
    /// thread's lifetime, and the pairing is checked in debug builds.
    pub fn unblock_slot(&mut self, idx: u32, id: ThreadId) {
        debug_assert_eq!(
            self.entries[idx as usize].as_ref().map(|e| e.id),
            Some(id),
            "stale slot handle in unblock_slot"
        );
        let _ = id;
        self.settle_span();
        self.unblock_inner(idx);
    }

    fn unblock_inner(&mut self, idx: u32) {
        if self.config.lazy_rollovers {
            // Refresh the budget first: a thread that slept across its
            // boundary wakes into a fresh period, not a stale throttle.
            self.sync_entry(idx);
        }
        let Some(entry) = self.entries[idx as usize].as_mut() else {
            return;
        };
        if entry.state == ThreadState::Blocked {
            let id = entry.id;
            let mut rethrottled = false;
            if entry.account.exhausted() && matches!(entry.class, ThreadClass::Reserved(_)) {
                entry.state = ThreadState::Throttled;
                rethrottled = true;
            } else {
                entry.state = ThreadState::Ready;
                entry.account.mark_runnable();
            }
            let next_boundary_us = entry.next_boundary_us;
            if self.config.lazy_rollovers && rethrottled {
                self.timers.arm(idx, id, next_boundary_us);
            }
            self.reindex(idx);
        }
    }

    /// Advances the scheduler clock to `now_us`, processing any period
    /// timers that expired on the way (`do_timers()` in the prototype).
    /// Constant-time when no timer has expired.
    pub fn advance_to(&mut self, now_us: u64) {
        if now_us <= self.now_us {
            return;
        }
        self.now_us = now_us;
        if self.config.lazy_rollovers {
            // Only throttle-release timers are armed; the batch sync rolls
            // the boundary backlog, unthrottles, and never re-arms (a fresh
            // budget means no pending release).  The popped slot is the
            // dispatcher's own dense index — no id resolution.
            while let Some(idx) = self.timers.pop_next_expired(now_us) {
                self.sync_entry(idx);
            }
            return;
        }
        // Drain expired timers in expiry order, one at a time — re-armed
        // boundaries land strictly in the future, so the drain terminates
        // without collecting into an intermediate `Vec`.
        while let Some(idx) = self.timers.pop_next_expired(now_us) {
            let Some(entry) = self.entries[idx as usize].as_mut() else {
                continue;
            };
            let ThreadClass::Reserved(r) = entry.class else {
                continue;
            };
            let missed = entry.account.roll_period(now_us, r.budget_micros());
            self.stats.period_rollovers += 1;
            if let Some(t) = &self.telemetry {
                t.record(
                    now_us,
                    TraceEventKind::PeriodRollover {
                        cpu: self.telemetry_cpu,
                        thread: entry.id.0,
                        count: 1,
                    },
                );
            }
            if missed {
                self.stats.deadlines_missed += 1;
                self.missed_since_last_poll += 1;
            }
            if entry.state == ThreadState::Throttled {
                entry.state = ThreadState::Ready;
            }
            if entry.state.is_runnable() {
                entry.account.mark_runnable();
            }
            let ratio_changed =
                entry.account.last_period_usage_ratio() != entry.last_reported_ratio;
            let id = entry.id;
            // Re-arm for the next period boundary.
            self.timers.arm(idx, id, now_us + r.period.as_micros());
            self.reindex(idx);
            if ratio_changed {
                self.watch(idx);
            }
        }
    }

    /// Lazy mode: rolls the slot's period-boundary backlog into its account
    /// in one `O(1)` batch and restores the dispatch state (unthrottling a
    /// released thread, cancelling its timer).  No-op in eager mode, for
    /// best-effort threads, and when no boundary has passed.
    fn sync_entry(&mut self, idx: u32) {
        if !self.config.lazy_rollovers {
            return;
        }
        let now = self.now_us;
        let Some(entry) = self.entries.get_mut(idx as usize).and_then(Option::as_mut) else {
            return;
        };
        let ThreadClass::Reserved(r) = entry.class else {
            return;
        };
        if entry.next_boundary_us > now {
            return;
        }
        // A boundary roll must never race an unsettled span batch for the
        // same slot: every settle point runs before its sync, and the span
        // thread is Running, so it never holds the release timer that
        // `advance_to` drains into this sync.
        debug_assert!(
            self.span_pending_us == 0 || self.span_slot != Some(idx),
            "boundary roll with an unsettled span batch for the same slot"
        );
        let period = r.period.as_micros().max(1);
        let k = (now - entry.next_boundary_us) / period + 1;
        let final_start = entry.next_boundary_us + (k - 1) * period;
        let runnable_rest = entry.state.is_runnable();
        let missed = entry
            .account
            .roll_periods(k, r.budget_micros(), runnable_rest, final_start);
        entry.next_boundary_us = final_start + period;
        let released = entry.state == ThreadState::Throttled;
        if released {
            entry.state = ThreadState::Ready;
        }
        if entry.state.is_runnable() {
            entry.account.mark_runnable();
        }
        let ratio_changed = entry.account.last_period_usage_ratio() != entry.last_reported_ratio;
        let thread = entry.id.0;
        self.stats.period_rollovers += k;
        self.stats.deadlines_missed += missed;
        self.missed_since_last_poll += missed;
        if let Some(t) = &self.telemetry {
            t.record(
                now,
                TraceEventKind::PeriodRollover {
                    cpu: self.telemetry_cpu,
                    thread,
                    count: k as u32,
                },
            );
        }
        if released {
            // The release already happened; any still-armed timer (e.g. a
            // sync racing ahead of `advance_to`'s drain) is stale.
            self.timers.cancel(idx);
            self.reindex(idx);
        }
        if ratio_changed {
            self.watch(idx);
        }
    }

    /// Lazy mode: settles every thread's boundary backlog so that
    /// [`Dispatcher::usage`]-style queries and final statistics reflect the
    /// current instant.  No-op in eager mode (but still settles any
    /// pending span batch).
    pub fn sync_all(&mut self) {
        self.settle_span();
        for idx in 0..self.entries.len() as u32 {
            self.sync_entry(idx);
        }
    }

    /// Visits every reserved thread whose usage ratio changed since its
    /// last visit, after settling its boundary backlog — the changed-only
    /// usage feed the controller consumes instead of a full
    /// [`Dispatcher::for_each_usage`] sweep.
    ///
    /// A thread leaves the watch set once it has settled at a 0.0 ratio
    /// with nothing consumed in the current period; any later activity
    /// (pick, charge, reservation change) re-watches it.  Works in both
    /// rollover modes.
    pub fn drain_usage_changes(&mut self, mut f: impl FnMut(ThreadId, f64)) {
        self.settle_span();
        let mut i = 0;
        while i < self.watch_list.len() {
            let idx = self.watch_list[i];
            let live = self.entries[idx as usize]
                .as_ref()
                .is_some_and(|e| e.watched);
            if !live {
                // The slot was freed (and possibly recycled) since it was
                // watched; drop the stale occurrence.
                self.watch_list.swap_remove(i);
                continue;
            }
            self.sync_entry(idx);
            let entry = self.entries[idx as usize]
                .as_mut()
                .expect("occupancy verified by the `live` probe two lines up");
            let ratio = entry.account.last_period_usage_ratio();
            if ratio != entry.last_reported_ratio {
                entry.last_reported_ratio = ratio;
                f(entry.id, ratio);
            }
            let settled = ratio == 0.0 && entry.account.used_this_period_us == 0;
            if settled {
                entry.watched = false;
                self.watch_list.swap_remove(i);
            } else {
                i += 1;
            }
        }
    }

    /// Puts the slot on the usage watch list (idempotent).
    fn watch(&mut self, idx: u32) {
        if let Some(entry) = self.entries[idx as usize].as_mut() {
            if !entry.watched {
                entry.watched = true;
                self.watch_list.push(idx);
            }
        }
    }

    /// Returns `true` if any thread is currently runnable — the calendar
    /// driver's `O(1)` "is this CPU busy?" probe.
    pub fn has_runnable(&self) -> bool {
        self.runnable.peek().is_some()
    }

    /// Returns (and clears) the number of deadlines missed since the last
    /// call.  The controller polls this to decide whether to grow its spare
    /// capacity by lowering the admission threshold.
    pub fn take_missed_deadlines(&mut self) -> u64 {
        std::mem::take(&mut self.missed_since_last_poll)
    }

    /// The Linux "recalculate goodness" pass: when every runnable
    /// best-effort thread has exhausted its slice, refill every best-effort
    /// slice.  Skipped in `O(1)` when some runnable slice remains or when
    /// every slice is already known to be full, so repeated idle dispatches
    /// touch no per-thread state.
    fn maybe_recalc(&mut self) {
        if self.runnable_be_with_slice > 0 {
            return;
        }
        if self.be_count == 0 || !self.be_slices_dirty {
            return;
        }
        let slice = self.config.best_effort_slice_us;
        for idx in 0..self.entries.len() {
            let is_be = self.entries[idx]
                .as_ref()
                .is_some_and(|e| matches!(e.class, ThreadClass::BestEffort));
            if is_be {
                self.entries[idx]
                    .as_mut()
                    .expect("occupancy verified by the `is_be` probe above")
                    .remaining_slice_us = slice;
                self.reindex(idx as u32);
            }
        }
        self.be_slices_dirty = false;
    }

    /// Takes one dispatch decision: picks the runnable thread with the
    /// highest goodness and returns it together with the quantum it may run
    /// for.  Charges the modelled dispatch overhead.
    ///
    /// When the next-quantum cache is valid — nothing mutated the queue
    /// since the last pick, and that pick's period boundary is still ahead
    /// — the decision is re-issued in `O(1)` without touching the heap.
    pub fn dispatch(&mut self) -> DispatchOutcome {
        if let Some(outcome) = self.cached_outcome() {
            return outcome;
        }
        self.settle_span();
        self.stats.dispatches += 1;
        self.stats.overhead_us += self.config.dispatch_cost_us;
        self.fast_path.quantum_cache_misses += 1;
        if let Some(t) = &self.telemetry {
            t.record(
                self.now_us,
                TraceEventKind::CacheMiss {
                    cpu: self.telemetry_cpu,
                },
            );
        }

        // Recalculate best-effort slices when every runnable best-effort
        // thread has exhausted its slice (the Linux "recalculate goodness"
        // pass).
        self.maybe_recalc();

        // Pick the best runnable thread: highest goodness, ties broken by
        // least recently picked, then lowest id.
        let Some((key, idx)) = self.runnable.peek() else {
            // Nothing runnable: idle until the next timer or one dispatch
            // interval, whichever comes first.
            let quantum = self
                .timers
                .next_expiry()
                .map(|t| t.saturating_sub(self.now_us).max(1))
                .unwrap_or(self.config.dispatch_interval_us)
                .min(self.config.dispatch_interval_us.max(1));
            self.stats.idle_us += quantum;
            if self.running.is_some() {
                self.running = None;
            }
            self.span_slot = None;
            self.quantum_cache_gen = None;
            return DispatchOutcome {
                thread: None,
                quantum_us: quantum,
            };
        };
        let picked = key.id;
        if self.config.lazy_rollovers {
            // Bring the picked thread's account up to date before the
            // quantum is capped by its remaining budget.  The rank key is
            // period-derived, so a roll cannot invalidate the pick.
            self.sync_entry(idx);
        }

        if self.running != Some(picked) {
            self.stats.context_switches += 1;
            self.stats.overhead_us += self.config.context_switch_cost_us;
        }
        self.running = Some(picked);
        self.pick_seq += 1;

        let pick_seq = self.pick_seq;
        let entry = self.entries[idx as usize]
            .as_mut()
            .expect("the runqueue only holds occupied slots (remove precedes unlink)");
        entry.last_picked_seq = pick_seq;
        entry.state = ThreadState::Running;
        entry.account.mark_runnable();

        let reserved = matches!(entry.class, ThreadClass::Reserved(_));
        let budget_cap = match entry.class {
            ThreadClass::Reserved(_) => entry.account.remaining_us().max(1),
            ThreadClass::BestEffort => entry.remaining_slice_us.max(1),
        };
        let quantum = self.config.dispatch_interval_us.max(1).min(budget_cap);
        self.reindex(idx);
        // Arm the next-quantum cache: if the freshly re-ranked pick is
        // still at the root, nothing can outrank it until some operation
        // bumps `queue_gen` (only lazy reserved picks qualify — eager mode
        // rolls accounts behind the cache's back, and a best-effort pick's
        // own charge re-ranks it).
        self.span_slot = Some(idx);
        self.quantum_cache_gen = (self.config.lazy_rollovers
            && reserved
            && self.runnable.peek().is_some_and(|(_, top)| top == idx))
        .then_some(self.queue_gen);
        DispatchOutcome {
            thread: Some(picked),
            quantum_us: quantum,
        }
    }

    /// The `O(1)` fast path of [`Dispatcher::dispatch`]: re-issues the
    /// cached pick when the queue generation is unchanged and the pick's
    /// period boundary is still ahead.  Touches no map and no heap;
    /// observably identical to the slow path re-picking the same thread.
    fn cached_outcome(&mut self) -> Option<DispatchOutcome> {
        if self.quantum_cache_gen != Some(self.queue_gen) {
            return None;
        }
        let idx = self.span_slot?;
        let pending = self.span_pending_us;
        let pick_seq = self.pick_seq + 1;
        let dispatch_cost = self.config.dispatch_cost_us;
        let interval = self.config.dispatch_interval_us;
        let entry = self.entries[idx as usize]
            .as_mut()
            .expect("queue mutations invalidate the cache before a slot can be freed");
        if self.now_us >= entry.next_boundary_us {
            // The pick's period rolls at or before now: take the slow path,
            // which syncs the account before capping the quantum.
            return None;
        }
        debug_assert_eq!(self.running, Some(entry.id), "cache survived a preemption");
        self.stats.dispatches += 1;
        self.stats.overhead_us += dispatch_cost;
        self.pick_seq = pick_seq;
        entry.last_picked_seq = pick_seq;
        entry.state = ThreadState::Running;
        entry.account.mark_runnable();
        // Identical to the slow path's `remaining_us()` cap with the
        // pending span batch counted as already charged.
        let cap = entry
            .account
            .budget_us
            .saturating_sub(entry.account.used_this_period_us + pending)
            .max(1);
        let thread = entry.id;
        self.fast_path.quantum_cache_hits += 1;
        if let Some(t) = &self.telemetry {
            t.record(
                self.now_us,
                TraceEventKind::CacheHit {
                    cpu: self.telemetry_cpu,
                },
            );
        }
        Some(DispatchOutcome {
            thread: Some(thread),
            quantum_us: interval.max(1).min(cap),
        })
    }

    /// Charges `us` microseconds of CPU consumption to a thread, throttling
    /// it if its budget (or best-effort slice) is exhausted.
    pub fn charge(&mut self, id: ThreadId, us: u64) -> Result<(), SchedError> {
        self.settle_span();
        let &idx = self.by_id.get(&id).ok_or(SchedError::UnknownThread(id))?;
        self.charge_slot(idx, us);
        Ok(())
    }

    /// Charges `us` microseconds to the thread picked by the last
    /// [`Dispatcher::dispatch`] without resolving its id — the simulator's
    /// hot-path pairing.  Consecutive reserved-thread charges accumulate
    /// into a pending batch and settle in one account update when the
    /// deferral could change a decision (see [`crate::settle`]).
    pub fn charge_span(&mut self, us: u64) {
        let idx = self
            .span_slot
            .expect("charge_span without a dispatched span");
        let entry = self.entries[idx as usize]
            .as_ref()
            .expect("unlink clears span_slot, so a live span always points at an occupied slot");
        let reason = span_settle_reason(
            matches!(entry.class, ThreadClass::BestEffort),
            us,
            self.span_pending_us,
            &entry.account,
            self.now_us,
            entry.next_boundary_us,
        );
        match reason {
            None => self.span_pending_us += us,
            Some(reason) => {
                self.note_settle(idx, reason);
                self.settle_span();
                self.charge_slot(idx, us);
            }
        }
    }

    /// Counts a forced span settle by its reason and, when telemetry is
    /// enabled, records the settle point as a trace event.
    fn note_settle(&mut self, idx: u32, reason: SettleReason) {
        let cause = match reason {
            SettleReason::GoodnessCrossing => {
                self.fast_path.settles_goodness += 1;
                SettleCause::Goodness
            }
            SettleReason::PeriodBoundary => {
                self.fast_path.settles_period_boundary += 1;
                SettleCause::PeriodBoundary
            }
            SettleReason::ThrottleEdge => {
                self.fast_path.settles_throttle_edge += 1;
                SettleCause::ThrottleEdge
            }
            SettleReason::ZeroSpan => {
                self.fast_path.settles_zero_span += 1;
                SettleCause::ZeroSpan
            }
        };
        if let Some(t) = &self.telemetry {
            let thread = self.entries[idx as usize]
                .as_ref()
                .map(|e| e.id.0)
                .unwrap_or(0);
            t.record(
                self.now_us,
                TraceEventKind::Settle {
                    cpu: self.telemetry_cpu,
                    thread,
                    cause,
                },
            );
        }
    }

    /// Applies the pending span batch to its account in one charge.  The
    /// batch can never throttle or cross a boundary — the settlement rule
    /// settles *before* either edge — so this is a plain account update
    /// plus a re-rank and a controller watch, identical in sum to having
    /// charged each span eagerly.
    fn settle_span(&mut self) {
        if self.span_pending_us == 0 {
            return;
        }
        let idx = self.span_slot.expect("pending charge without a span slot");
        let us = std::mem::take(&mut self.span_pending_us);
        self.apply_charge(idx, us);
    }

    /// The full per-charge path for a resolved slot: sync the period
    /// backlog (lazy mode), then apply the charge.
    fn charge_slot(&mut self, idx: u32, us: u64) {
        // Charge against the current period, not a stale one (no-op in
        // eager mode).
        self.sync_entry(idx);
        self.apply_charge(idx, us);
    }

    fn apply_charge(&mut self, idx: u32, us: u64) {
        let entry = self.entries[idx as usize]
            .as_mut()
            .expect("apply_charge receives a span or by_id slot, both occupied while charged");
        let id = entry.id;
        let mut throttled = false;
        let mut be_charged = false;
        match entry.class {
            ThreadClass::Reserved(_) => {
                // The shared settlement arithmetic IS the throttle test:
                // the batcher's edge prediction and this reference path
                // cannot drift.
                let exhausts = charge_exhausts(&entry.account, 0, us);
                entry.account.charge(us);
                debug_assert_eq!(exhausts, entry.account.exhausted());
                if exhausts && entry.state.is_runnable() {
                    entry.state = ThreadState::Throttled;
                    throttled = true;
                } else if entry.state == ThreadState::Running {
                    entry.state = ThreadState::Ready;
                }
            }
            ThreadClass::BestEffort => {
                entry.account.charge(us);
                entry.remaining_slice_us = entry.remaining_slice_us.saturating_sub(us);
                be_charged = true;
                if entry.state == ThreadState::Running {
                    entry.state = ThreadState::Ready;
                }
            }
        }
        let next_boundary_us = entry.next_boundary_us;
        if be_charged {
            self.be_slices_dirty = true;
        }
        if throttled {
            if self.running == Some(id) {
                self.running = None;
            }
            if self.config.lazy_rollovers {
                // The replenishment is now a dispatch-relevant event: arm
                // the release timer at the thread's next grid boundary.
                self.timers.arm(idx, id, next_boundary_us);
            }
        }
        self.reindex(idx);
        if !be_charged {
            // Only reserved threads report usage ratios to the controller.
            self.watch(idx);
        }
    }

    /// Convenience: advances time by one quantum for the outcome of a
    /// dispatch where the selected thread ran for the full quantum.
    pub fn run_quantum(&mut self) -> DispatchOutcome {
        let outcome = self.dispatch();
        if let Some(id) = outcome.thread {
            self.charge(id, outcome.quantum_us).expect("thread exists");
        }
        self.advance_to(self.now_us + outcome.quantum_us);
        outcome
    }

    /// The pre-index full-scan pick, kept as the oracle for the property
    /// test: the run-queue peek must always agree with it.  Scans the dense
    /// entry storage with an explicit lowest-id tie-break (the id-ordered
    /// original relied on first-seen-wins iteration order).
    #[cfg(test)]
    fn oracle_pick(&mut self) -> Option<ThreadId> {
        use std::cmp::Reverse;
        self.maybe_recalc();
        let mut best: Option<(i64, u64, Reverse<u64>)> = None;
        let mut best_id = None;
        for entry in self.entries.iter().flatten() {
            if !entry.state.is_runnable() {
                continue;
            }
            let g = match entry.class {
                ThreadClass::Reserved(r) => rbs_goodness(r.period),
                ThreadClass::BestEffort => best_effort_goodness(entry.remaining_slice_us),
            };
            let key = (g, u64::MAX - entry.last_picked_seq, Reverse(entry.id.0));
            if best.is_none_or(|b| key > b) {
                best = Some(key);
                best_id = Some(entry.id);
            }
        }
        best_id
    }

    /// Cross-checks every derived index against a full recomputation.
    #[cfg(test)]
    fn assert_consistent(&self) {
        let mut reserved = 0u32;
        let mut be = 0usize;
        let mut be_with_slice = 0usize;
        let mut runnable = 0usize;
        let mut live = 0usize;
        for (slot, entry) in self.entries.iter().enumerate() {
            let Some(entry) = entry else { continue };
            let idx = slot as u32;
            let id = entry.id;
            live += 1;
            assert_eq!(
                self.by_id.get(&id),
                Some(&idx),
                "by_id disagrees with dense storage for {id}"
            );
            match entry.class {
                ThreadClass::Reserved(r) => reserved += r.proportion.ppt(),
                ThreadClass::BestEffort => be += 1,
            }
            let counted = entry.state.is_runnable()
                && matches!(entry.class, ThreadClass::BestEffort)
                && entry.remaining_slice_us > 0;
            assert_eq!(
                entry.counted_be_slice, counted,
                "recalc flag stale for {id}"
            );
            if counted {
                be_with_slice += 1;
            }
            assert_eq!(
                self.runnable.contains(idx),
                entry.state.is_runnable(),
                "run-queue membership stale for {id}"
            );
            if entry.state.is_runnable() {
                runnable += 1;
            }
            let expiry = self.timers.expiry_of(idx);
            match entry.class {
                ThreadClass::Reserved(_) if self.config.lazy_rollovers => {
                    // Lazy invariant: exactly the throttled threads keep a
                    // release timer armed, at their next grid boundary.
                    if entry.state == ThreadState::Throttled {
                        assert_eq!(
                            expiry,
                            Some(entry.next_boundary_us),
                            "throttled {id} has no release timer at its boundary"
                        );
                    } else {
                        assert_eq!(expiry, None, "unthrottled {id} keeps a stale timer");
                    }
                }
                ThreadClass::Reserved(_) => {
                    assert!(
                        expiry.is_some(),
                        "eager reserved {id} lost its period timer"
                    );
                }
                ThreadClass::BestEffort => {
                    assert_eq!(expiry, None, "best-effort {id} has a period timer");
                }
            }
            if entry.watched {
                assert!(
                    self.watch_list.contains(&idx),
                    "watched flag set for {id} but slot missing from watch list"
                );
            }
        }
        assert_eq!(self.by_id.len(), live, "by_id holds a freed slot");
        assert_eq!(self.reserved_ppt, reserved);
        assert_eq!(self.be_count, be);
        assert_eq!(self.runnable_be_with_slice, be_with_slice);
        assert_eq!(self.runnable.len(), runnable);
        // Span-batch invariants: pending usage always has a live reserved
        // owner and stays strictly under its budget (the throttle edge
        // settles before it is reached).
        if self.span_pending_us > 0 {
            let idx = self.span_slot.expect("pending charge without a span slot");
            let entry = self.entries[idx as usize]
                .as_ref()
                .expect("span slot freed with pending charge");
            assert!(
                matches!(entry.class, ThreadClass::Reserved(_)),
                "best-effort {} accumulated a span batch",
                entry.id
            );
            assert!(
                entry.account.used_this_period_us + self.span_pending_us < entry.account.budget_us,
                "span batch for {} reached the throttle edge unsettled",
                entry.id
            );
        }
        // Next-quantum-cache invariant: an armed cache means the heap has
        // not moved since the pick, so the cached slot is still the root.
        if self.quantum_cache_gen == Some(self.queue_gen) {
            let idx = self.span_slot.expect("armed cache without a span slot");
            assert_eq!(
                self.runnable.peek().map(|(_, top)| top),
                Some(idx),
                "armed cache but the cached slot is not the run-queue root"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Period;
    use proptest::prelude::*;

    fn reserved(ppt: u32, period_ms: u64) -> ThreadClass {
        ThreadClass::Reserved(Reservation::new(
            Proportion::from_ppt(ppt),
            Period::from_millis(period_ms),
        ))
    }

    #[test]
    fn add_and_remove_threads() {
        let mut d = Dispatcher::new(DispatcherConfig::default());
        d.add_thread(ThreadId(1), reserved(100, 30)).unwrap();
        assert_eq!(
            d.add_thread(ThreadId(1), ThreadClass::BestEffort),
            Err(SchedError::DuplicateThread(ThreadId(1)))
        );
        assert_eq!(d.thread_count(), 1);
        assert_eq!(d.thread_ids().collect::<Vec<_>>(), vec![ThreadId(1)]);
        d.remove_thread(ThreadId(1)).unwrap();
        assert_eq!(
            d.remove_thread(ThreadId(1)),
            Err(SchedError::UnknownThread(ThreadId(1)))
        );
        assert_eq!(d.thread_ids().next(), None);
    }

    #[test]
    fn admission_control_rejects_oversubscription() {
        let mut d = Dispatcher::new(DispatcherConfig::default());
        d.add_thread(ThreadId(1), reserved(600, 30)).unwrap();
        let err = d.add_thread(ThreadId(2), reserved(500, 30)).unwrap_err();
        assert!(matches!(err, SchedError::Oversubscribed { .. }));
        // Best-effort threads are always admitted.
        d.add_thread(ThreadId(3), ThreadClass::BestEffort).unwrap();
        assert_eq!(d.total_reserved().ppt(), 600);
        assert!(!d.is_overloaded());
    }

    #[test]
    fn reserved_thread_beats_best_effort() {
        let mut d = Dispatcher::new(DispatcherConfig::default());
        d.add_thread(ThreadId(1), ThreadClass::BestEffort).unwrap();
        d.add_thread(ThreadId(2), reserved(100, 30)).unwrap();
        assert_eq!(d.dispatch().thread, Some(ThreadId(2)));
    }

    #[test]
    fn shorter_period_beats_longer_period() {
        let mut d = Dispatcher::new(DispatcherConfig::default());
        d.add_thread(ThreadId(1), reserved(100, 100)).unwrap();
        d.add_thread(ThreadId(2), reserved(100, 10)).unwrap();
        assert_eq!(d.dispatch().thread, Some(ThreadId(2)));
    }

    #[test]
    fn exhausted_thread_is_throttled_until_next_period() {
        let mut d = Dispatcher::new(DispatcherConfig::default());
        // 10 % of 10 ms = 1 ms budget, equal to one dispatch interval.
        d.add_thread(ThreadId(1), reserved(100, 10)).unwrap();
        let o = d.dispatch();
        assert_eq!(o.thread, Some(ThreadId(1)));
        assert_eq!(o.quantum_us, 1000);
        d.charge(ThreadId(1), 1000).unwrap();
        assert_eq!(d.thread_state(ThreadId(1)), Some(ThreadState::Throttled));
        // Nothing else to run.
        d.advance_to(2000);
        assert_eq!(d.dispatch().thread, None);
        // At the period boundary the thread is replenished.
        d.advance_to(10_000);
        assert_eq!(d.thread_state(ThreadId(1)), Some(ThreadState::Ready));
        assert_eq!(d.dispatch().thread, Some(ThreadId(1)));
    }

    #[test]
    fn quantum_is_capped_by_remaining_budget() {
        let mut d = Dispatcher::new(DispatcherConfig::default());
        // 5 % of 10 ms = 500 µs budget < 1 ms dispatch interval.
        d.add_thread(ThreadId(1), reserved(50, 10)).unwrap();
        let o = d.dispatch();
        assert_eq!(o.quantum_us, 500);
    }

    #[test]
    fn best_effort_threads_round_robin() {
        let config = DispatcherConfig {
            best_effort_slice_us: 2_000,
            ..DispatcherConfig::default()
        };
        let mut d = Dispatcher::new(config);
        d.add_thread(ThreadId(1), ThreadClass::BestEffort).unwrap();
        d.add_thread(ThreadId(2), ThreadClass::BestEffort).unwrap();
        let mut picks = Vec::new();
        for _ in 0..6 {
            let o = d.dispatch();
            let id = o.thread.unwrap();
            picks.push(id);
            d.charge(id, o.quantum_us).unwrap();
            d.advance_to(d.now_us() + o.quantum_us);
        }
        // Both threads get picked (no starvation of one by the other).
        assert!(picks.contains(&ThreadId(1)));
        assert!(picks.contains(&ThreadId(2)));
    }

    #[test]
    fn blocked_thread_is_not_dispatched() {
        let mut d = Dispatcher::new(DispatcherConfig::default());
        d.add_thread(ThreadId(1), reserved(100, 10)).unwrap();
        d.block(ThreadId(1)).unwrap();
        assert_eq!(d.dispatch().thread, None);
        d.unblock(ThreadId(1)).unwrap();
        assert_eq!(d.dispatch().thread, Some(ThreadId(1)));
    }

    #[test]
    fn unblocking_exhausted_thread_keeps_it_throttled() {
        let mut d = Dispatcher::new(DispatcherConfig::default());
        d.add_thread(ThreadId(1), reserved(100, 10)).unwrap();
        let o = d.dispatch();
        d.charge(ThreadId(1), o.quantum_us).unwrap();
        d.block(ThreadId(1)).unwrap();
        d.unblock(ThreadId(1)).unwrap();
        assert_eq!(d.thread_state(ThreadId(1)), Some(ThreadState::Throttled));
    }

    #[test]
    fn idle_system_reports_idle_time() {
        let mut d = Dispatcher::new(DispatcherConfig::default());
        let o = d.dispatch();
        assert_eq!(o.thread, None);
        assert!(o.quantum_us > 0);
        assert!(d.stats().idle_us > 0);
    }

    #[test]
    fn missed_deadline_detected_under_oversubscription() {
        // Two threads each wanting 60 % of a 10 ms period: only ~100 % is
        // available so someone must miss.
        let config = DispatcherConfig {
            admission_threshold_ppt: 1000,
            dispatch_cost_us: 0.0,
            context_switch_cost_us: 0.0,
            ..DispatcherConfig::default()
        };
        let mut d = Dispatcher::new(config);
        d.add_thread(ThreadId(1), reserved(600, 10)).unwrap();
        // Admission would reject a second 60 % reservation, so admit it
        // small and grow it through the controller's actuation path (which
        // does not re-check admission).
        d.add_thread(ThreadId(2), reserved(100, 10)).unwrap();
        d.set_reservation(
            ThreadId(2),
            Reservation::new(Proportion::from_ppt(600), Period::from_millis(10)),
        )
        .unwrap();
        assert!(d.is_overloaded());
        // Run for 30 ms of simulated time.
        while d.now_us() < 30_000 {
            d.run_quantum();
        }
        assert!(d.stats().deadlines_missed > 0);
        assert!(d.take_missed_deadlines() > 0);
        assert_eq!(d.take_missed_deadlines(), 0);
    }

    #[test]
    fn set_reservation_changes_budget_and_can_unthrottle() {
        let mut d = Dispatcher::new(DispatcherConfig::default());
        d.add_thread(ThreadId(1), reserved(100, 10)).unwrap();
        let o = d.dispatch();
        d.charge(ThreadId(1), o.quantum_us).unwrap();
        assert_eq!(d.thread_state(ThreadId(1)), Some(ThreadState::Throttled));
        // Doubling the proportion mid-period un-throttles the thread.
        d.set_reservation(
            ThreadId(1),
            Reservation::new(Proportion::from_ppt(200), Period::from_millis(10)),
        )
        .unwrap();
        assert_eq!(d.thread_state(ThreadId(1)), Some(ThreadState::Ready));
        assert_eq!(d.reservation(ThreadId(1)).unwrap().proportion.ppt(), 200);
    }

    #[test]
    fn set_reservation_on_unknown_thread_fails() {
        let mut d = Dispatcher::new(DispatcherConfig::default());
        let r = Reservation::new(Proportion::from_ppt(10), Period::from_millis(10));
        assert!(d.set_reservation(ThreadId(9), r).is_err());
    }

    #[test]
    fn best_effort_thread_can_become_reserved() {
        let mut d = Dispatcher::new(DispatcherConfig::default());
        d.add_thread(ThreadId(1), ThreadClass::BestEffort).unwrap();
        assert!(d.reservation(ThreadId(1)).is_none());
        d.set_reservation(
            ThreadId(1),
            Reservation::new(Proportion::from_ppt(50), Period::from_millis(30)),
        )
        .unwrap();
        assert_eq!(d.reservation(ThreadId(1)).unwrap().proportion.ppt(), 50);
        assert_eq!(d.total_reserved().ppt(), 50);
    }

    #[test]
    fn reserved_thread_gets_its_proportion_over_time() {
        let config = DispatcherConfig {
            dispatch_cost_us: 0.0,
            context_switch_cost_us: 0.0,
            ..DispatcherConfig::default()
        };
        let mut d = Dispatcher::new(config);
        // 30 % reservation competing with a best-effort hog.
        d.add_thread(ThreadId(1), reserved(300, 10)).unwrap();
        d.add_thread(ThreadId(2), ThreadClass::BestEffort).unwrap();
        while d.now_us() < 1_000_000 {
            d.run_quantum();
        }
        let usage = d.usage(ThreadId(1)).unwrap();
        let fraction = usage.total_used_us as f64 / 1_000_000.0;
        assert!(
            (fraction - 0.3).abs() < 0.02,
            "reserved thread got {fraction} of the CPU"
        );
        // The best-effort hog gets the rest.
        let hog = d.usage(ThreadId(2)).unwrap();
        let hog_fraction = hog.total_used_us as f64 / 1_000_000.0;
        assert!(hog_fraction > 0.6, "hog got {hog_fraction}");
    }

    #[test]
    fn overhead_accumulates_with_dispatches() {
        let mut d = Dispatcher::new(DispatcherConfig::default());
        d.add_thread(ThreadId(1), reserved(500, 10)).unwrap();
        for _ in 0..10 {
            d.run_quantum();
        }
        let stats = d.stats();
        assert_eq!(stats.dispatches, 10);
        assert!(stats.overhead_us >= 10.0 * 5.0);
    }

    #[test]
    fn preadmitted_thread_bypasses_admission_but_not_duplicates() {
        let mut d = Dispatcher::new(DispatcherConfig::default());
        d.add_thread(ThreadId(1), reserved(900, 10)).unwrap();
        // The regular path is full; a pre-admitted reservation still lands.
        let r = Reservation::new(Proportion::from_ppt(300), Period::from_millis(10));
        d.add_thread_preadmitted(ThreadId(2), r).unwrap();
        assert_eq!(d.reservation(ThreadId(2)), Some(r));
        assert!(d.is_overloaded());
        assert_eq!(
            d.add_thread_preadmitted(ThreadId(2), r),
            Err(SchedError::DuplicateThread(ThreadId(2)))
        );
    }

    #[test]
    fn usage_views_agree() {
        let mut d = Dispatcher::new(DispatcherConfig::default());
        d.add_thread(ThreadId(1), reserved(300, 10)).unwrap();
        d.add_thread(ThreadId(2), reserved(200, 10)).unwrap();
        for _ in 0..5 {
            d.run_quantum();
        }
        let mut visited = 0;
        d.for_each_usage(|id, acct| {
            visited += 1;
            assert_eq!(d.usage(id).unwrap().total_used_us, acct.total_used_us);
            assert_eq!(d.usage_ref(id).unwrap().total_used_us, acct.total_used_us);
        });
        assert_eq!(visited, 2);
        assert!(d.usage_ref(ThreadId(9)).is_none());
    }

    #[test]
    fn take_and_inject_preserve_account_and_throttle() {
        let mut src = Dispatcher::new(DispatcherConfig::default());
        let mut dst = Dispatcher::new(DispatcherConfig::default());
        src.add_thread(ThreadId(1), reserved(100, 10)).unwrap();
        // Exhaust the budget so the thread is throttled mid-period.
        let o = src.dispatch();
        src.charge(ThreadId(1), o.quantum_us).unwrap();
        assert_eq!(src.thread_state(ThreadId(1)), Some(ThreadState::Throttled));
        let used = src.usage(ThreadId(1)).unwrap().total_used_us;

        let taken = src.take_thread(ThreadId(1)).unwrap();
        assert_eq!(taken.state(), ThreadState::Throttled);
        assert!(src.take_thread(ThreadId(1)).is_err(), "already taken");
        dst.inject_thread(taken).unwrap();
        // Still throttled on the destination, with the account intact.
        assert_eq!(dst.thread_state(ThreadId(1)), Some(ThreadState::Throttled));
        assert_eq!(dst.usage(ThreadId(1)).unwrap().total_used_us, used);
        assert_eq!(dst.dispatch().thread, None);
        // The period boundary scheduled by the source replenishes it here.
        dst.advance_to(10_000);
        assert_eq!(dst.thread_state(ThreadId(1)), Some(ThreadState::Ready));
        assert_eq!(dst.dispatch().thread, Some(ThreadId(1)));
        // Duplicate injection is rejected.
        assert_eq!(
            dst.inject_thread(MigratedThread {
                id: ThreadId(1),
                class: reserved(10, 10),
                state: ThreadState::Ready,
                account: UsageAccount::new(0, 0),
                remaining_slice_us: 0,
                next_boundary_us: None,
            }),
            Err(SchedError::DuplicateThread(ThreadId(1)))
        );
    }

    #[test]
    fn taking_the_running_thread_demotes_it_to_ready() {
        let mut d = Dispatcher::new(DispatcherConfig::default());
        d.add_thread(ThreadId(1), reserved(500, 10)).unwrap();
        assert_eq!(d.dispatch().thread, Some(ThreadId(1)));
        let taken = d.take_thread(ThreadId(1)).unwrap();
        assert_eq!(taken.state(), ThreadState::Ready);
        assert!(matches!(taken.class(), ThreadClass::Reserved(_)));
        // The source no longer schedules it.
        assert_eq!(d.dispatch().thread, None);
    }

    #[test]
    fn next_timer_expiry_tracks_reserved_threads() {
        let mut d = Dispatcher::new(DispatcherConfig::default());
        assert_eq!(d.next_timer_expiry(), None);
        d.add_thread(ThreadId(1), reserved(100, 10)).unwrap();
        assert_eq!(d.next_timer_expiry(), Some(10_000));
    }

    #[test]
    fn advance_to_is_monotone() {
        let mut d = Dispatcher::new(DispatcherConfig::default());
        d.advance_to(1000);
        d.advance_to(500); // ignored
        assert_eq!(d.now_us(), 1000);
    }

    #[test]
    fn freed_slots_are_reused() {
        let mut d = Dispatcher::new(DispatcherConfig::default());
        d.add_thread(ThreadId(1), reserved(100, 10)).unwrap();
        d.add_thread(ThreadId(2), reserved(100, 20)).unwrap();
        d.remove_thread(ThreadId(1)).unwrap();
        d.add_thread(ThreadId(3), reserved(100, 30)).unwrap();
        assert_eq!(d.entries.len(), 2, "dense storage does not grow on reuse");
        assert_eq!(d.thread_count(), 2);
        d.assert_consistent();
    }

    fn lazy_config() -> DispatcherConfig {
        DispatcherConfig {
            lazy_rollovers: true,
            ..DispatcherConfig::default()
        }
    }

    #[test]
    fn lazy_exhausted_thread_is_replenished_at_the_boundary() {
        let mut d = Dispatcher::new(lazy_config());
        d.add_thread(ThreadId(1), reserved(100, 10)).unwrap();
        let o = d.dispatch();
        assert_eq!(o.thread, Some(ThreadId(1)));
        assert_eq!(o.quantum_us, 1000);
        d.charge(ThreadId(1), 1000).unwrap();
        assert_eq!(d.thread_state(ThreadId(1)), Some(ThreadState::Throttled));
        // The throttle release is the only armed timer.
        assert_eq!(d.next_timer_expiry(), Some(10_000));
        d.assert_consistent();
        d.advance_to(2000);
        assert_eq!(d.dispatch().thread, None);
        d.advance_to(10_000);
        assert_eq!(d.thread_state(ThreadId(1)), Some(ThreadState::Ready));
        // Released: no timer armed until the thread throttles again.
        assert_eq!(d.next_timer_expiry(), None);
        assert_eq!(d.dispatch().thread, Some(ThreadId(1)));
        d.assert_consistent();
    }

    #[test]
    fn lazy_sync_batches_a_multi_period_backlog() {
        let mut d = Dispatcher::new(lazy_config());
        d.add_thread(ThreadId(1), reserved(100, 10)).unwrap();
        // Runnable but never picked for 5 whole periods: no timers fire,
        // no per-boundary work happens...
        d.advance_to(52_000);
        assert_eq!(d.stats().period_rollovers, 0);
        // ...until one O(1) sync settles the whole backlog, counting every
        // starved period as a miss.
        d.sync_all();
        let stats = d.stats();
        assert_eq!(stats.period_rollovers, 5);
        assert_eq!(stats.deadlines_missed, 5);
        let acct = d.usage(ThreadId(1)).unwrap();
        assert_eq!(acct.period_start_us, 50_000, "boundaries stay on the grid");
        assert_eq!(acct.periods_completed, 5);
        d.assert_consistent();
        // Syncing again is a no-op.
        d.sync_all();
        assert_eq!(d.stats().period_rollovers, 5);
    }

    #[test]
    fn lazy_blocked_thread_misses_only_its_runnable_period() {
        let mut d = Dispatcher::new(lazy_config());
        d.add_thread(ThreadId(1), reserved(100, 10)).unwrap();
        d.block(ThreadId(1)).unwrap();
        d.advance_to(45_000);
        d.unblock(ThreadId(1)).unwrap();
        // Period 1 was runnable-until-blocked and unserved (one miss); the
        // blocked periods don't count.
        assert_eq!(d.stats().deadlines_missed, 1);
        assert_eq!(d.stats().period_rollovers, 4);
        assert_eq!(d.thread_state(ThreadId(1)), Some(ThreadState::Ready));
        d.assert_consistent();
    }

    #[test]
    fn lazy_take_and_inject_keep_the_release_timer() {
        let mut src = Dispatcher::new(lazy_config());
        let mut dst = Dispatcher::new(lazy_config());
        src.add_thread(ThreadId(1), reserved(100, 10)).unwrap();
        let o = src.dispatch();
        src.charge(ThreadId(1), o.quantum_us).unwrap();
        assert_eq!(src.thread_state(ThreadId(1)), Some(ThreadState::Throttled));
        let taken = src.take_thread(ThreadId(1)).unwrap();
        assert_eq!(src.next_timer_expiry(), None);
        dst.inject_thread(taken).unwrap();
        // Still throttled on the destination, release armed at the same
        // grid boundary.
        assert_eq!(dst.thread_state(ThreadId(1)), Some(ThreadState::Throttled));
        assert_eq!(dst.next_timer_expiry(), Some(10_000));
        dst.assert_consistent();
        dst.advance_to(10_000);
        assert_eq!(dst.thread_state(ThreadId(1)), Some(ThreadState::Ready));
        assert_eq!(dst.dispatch().thread, Some(ThreadId(1)));
        dst.assert_consistent();
    }

    #[test]
    fn drain_usage_changes_reports_only_transitions() {
        let mut d = Dispatcher::new(lazy_config());
        d.add_thread(ThreadId(1), reserved(100, 10)).unwrap();
        let drain = |d: &mut Dispatcher| {
            let mut got = Vec::new();
            d.drain_usage_changes(|id, ratio| got.push((id, ratio)));
            got
        };
        // Nothing has happened: the controller's default assumption (1.0)
        // still holds, so nothing is reported.
        assert_eq!(drain(&mut d), vec![]);
        // Consume the full budget; after the boundary the completed period
        // reads 1.0 — still no transition.
        let o = d.dispatch();
        d.charge(ThreadId(1), o.quantum_us).unwrap();
        d.advance_to(10_000);
        assert_eq!(drain(&mut d), vec![]);
        // An idle period is a 1.0 → 0.0 transition, reported exactly once,
        // after which the settled thread leaves the watch set.
        d.advance_to(20_000);
        assert_eq!(drain(&mut d), vec![(ThreadId(1), 0.0)]);
        assert_eq!(drain(&mut d), vec![]);
        d.assert_consistent();
        // Activity re-watches it and the next boundary reports 1.0 again.
        let o = d.dispatch();
        d.charge(ThreadId(1), o.quantum_us).unwrap();
        d.advance_to(30_000);
        assert_eq!(drain(&mut d), vec![(ThreadId(1), 1.0)]);
        d.assert_consistent();
    }

    #[test]
    fn charge_span_batches_until_the_throttle_edge() {
        let mut d = Dispatcher::new(lazy_config());
        d.add_thread(ThreadId(1), reserved(100, 10)).unwrap();
        let o = d.dispatch();
        assert_eq!(o.thread, Some(ThreadId(1)));
        assert_eq!(o.quantum_us, 1000);
        for spans in 1..=9u64 {
            d.charge_span(100);
            // The batch is invisible to the account until settlement...
            assert_eq!(d.usage(ThreadId(1)).unwrap().used_this_period_us, 0);
            // ...but the cached re-pick still caps the next quantum under
            // what the batch has consumed.
            let o = d.dispatch();
            assert_eq!(o.thread, Some(ThreadId(1)));
            assert_eq!(o.quantum_us, 1000 - spans * 100);
        }
        // The tenth span reaches the budget edge: the batch settles first,
        // then the edge charge throttles the thread.
        d.charge_span(100);
        assert_eq!(d.thread_state(ThreadId(1)), Some(ThreadState::Throttled));
        assert_eq!(d.usage(ThreadId(1)).unwrap().used_this_period_us, 1000);
        assert_eq!(d.dispatch().thread, None);
        d.assert_consistent();
    }

    #[test]
    fn block_span_settles_and_unblock_slot_rewakes() {
        let mut d = Dispatcher::new(lazy_config());
        d.add_thread(ThreadId(1), reserved(100, 10)).unwrap();
        d.add_thread(ThreadId(2), reserved(100, 20)).unwrap();
        let o = d.dispatch();
        assert_eq!(o.thread, Some(ThreadId(1)), "shorter period wins");
        d.charge_span(300);
        // Blocking through the span handle settles the batch and hands the
        // slot back for the wake-up.
        let slot = d.block_span();
        assert_eq!(d.thread_state(ThreadId(1)), Some(ThreadState::Blocked));
        assert_eq!(d.usage(ThreadId(1)).unwrap().used_this_period_us, 300);
        assert_eq!(d.dispatch().thread, Some(ThreadId(2)));
        // The slot wakes the thread without an id lookup.
        d.unblock_slot(slot, ThreadId(1));
        assert_eq!(d.thread_state(ThreadId(1)), Some(ThreadState::Ready));
        assert_eq!(d.dispatch().thread, Some(ThreadId(1)));
        d.assert_consistent();
    }

    #[test]
    fn next_quantum_cache_invalidates_on_queue_change() {
        let mut d = Dispatcher::new(lazy_config());
        d.add_thread(ThreadId(1), reserved(100, 20)).unwrap();
        assert_eq!(d.dispatch().thread, Some(ThreadId(1)));
        d.charge_span(50);
        // A queue mutation between spans bumps the generation: the next
        // dispatch must re-pick through the heap and see the newcomer (and
        // settle the outstanding batch on the way).
        d.add_thread(ThreadId(2), reserved(100, 10)).unwrap();
        assert_eq!(d.dispatch().thread, Some(ThreadId(2)));
        assert_eq!(d.usage(ThreadId(1)).unwrap().used_this_period_us, 50);
        d.assert_consistent();
    }

    #[test]
    fn span_batch_settles_before_the_boundary_roll() {
        let mut d = Dispatcher::new(lazy_config());
        d.add_thread(ThreadId(1), reserved(500, 10)).unwrap();
        assert_eq!(d.dispatch().thread, Some(ThreadId(1)));
        d.charge_span(1000);
        d.advance_to(10_000);
        // The cached decision expired with the period: the next dispatch
        // takes the full path, settling the batch into the *old* period
        // before the boundary rolls it.
        assert_eq!(d.dispatch().thread, Some(ThreadId(1)));
        let acct = d.usage(ThreadId(1)).unwrap();
        assert_eq!(acct.periods_completed, 1);
        assert_eq!(acct.used_this_period_us, 0);
        d.assert_consistent();
    }

    proptest! {
        /// The tentpole's safety net: over arbitrary thread-state
        /// sequences, the goodness-indexed pick must equal the naive
        /// full-scan pick, and every derived index must stay consistent.
        ///
        /// Ops are encoded as `(selector, id, ppt, aux)` tuples because the
        /// vendored proptest miniature has no `prop_oneof`; selectors 8–10
        /// all dispatch so the pick comparison dominates the mix.
        #[test]
        fn indexed_pick_matches_naive_scan(
            ops in proptest::collection::vec((0u8..11, 0u64..12, 0u32..600, 1u64..60), 1..150),
        ) {
            let mut d = Dispatcher::new(DispatcherConfig::default());
            for (op, i, p, aux) in ops {
                match op {
                    0 => {
                        let _ = d.add_thread(ThreadId(i), reserved(p, aux));
                    }
                    1 => {
                        let _ = d.add_thread(ThreadId(i), ThreadClass::BestEffort);
                    }
                    2 => {
                        let _ = d.remove_thread(ThreadId(i));
                    }
                    3 => {
                        let _ = d.block(ThreadId(i));
                    }
                    4 => {
                        let _ = d.unblock(ThreadId(i));
                    }
                    5 => {
                        let _ = d.charge(ThreadId(i), p as u64 * 37);
                    }
                    6 => {
                        let r = Reservation::new(
                            Proportion::from_ppt(p),
                            Period::from_millis(aux),
                        );
                        let _ = d.set_reservation(ThreadId(i), r);
                    }
                    7 => d.advance_to(d.now_us() + aux * 499),
                    _ => {
                        let oracle = d.oracle_pick();
                        let outcome = d.dispatch();
                        prop_assert_eq!(
                            outcome.thread, oracle,
                            "indexed pick diverged from the full scan"
                        );
                        if let Some(t) = outcome.thread {
                            d.charge(t, outcome.quantum_us).expect("picked exists");
                        }
                    }
                }
                d.assert_consistent();
            }
        }

        /// Migration between two dispatchers keeps both sides' indices
        /// consistent and the picks oracle-true on the destination.
        #[test]
        fn migration_keeps_indices_consistent(
            seed_threads in proptest::collection::vec((0u32..400, 1u64..40), 1..8),
            moves in proptest::collection::vec(proptest::bool::ANY, 1..20),
        ) {
            let mut src = Dispatcher::new(DispatcherConfig::default());
            let mut dst = Dispatcher::new(src.config());
            for (i, &(ppt, ms)) in seed_threads.iter().enumerate() {
                // Oversubscribed seeds are rejected by admission; the
                // surviving population still migrates back and forth.
                let _ = src.add_thread(ThreadId(i as u64), reserved(ppt, ms));
            }
            let n = seed_threads.len() as u64;
            for (step, &forward) in moves.iter().enumerate() {
                let id = ThreadId(step as u64 % n);
                let (from, to) = if forward { (&mut src, &mut dst) } else { (&mut dst, &mut src) };
                if let Ok(taken) = from.take_thread(id) {
                    to.inject_thread(taken).unwrap();
                }
                src.advance_to(src.now_us() + 500);
                dst.advance_to(dst.now_us() + 500);
                let o_src = src.oracle_pick();
                prop_assert_eq!(src.dispatch().thread, o_src);
                let o_dst = dst.oracle_pick();
                prop_assert_eq!(dst.dispatch().thread, o_dst);
                src.assert_consistent();
                dst.assert_consistent();
            }
        }

        /// Lazy rollovers against the eager reference: identical operation
        /// sequences drive one dispatcher of each mode, advancing time only
        /// to the eager dispatcher's own timer expiries so the eager grid
        /// cannot drift.  Picks, quanta, post-sync accounts, states and
        /// stats (except idle bookkeeping) must match exactly.
        #[test]
        fn lazy_rollovers_match_eager_reference(
            ops in proptest::collection::vec((0u8..10, 0u64..6, 0u32..500, 1u64..40), 1..120),
        ) {
            let mut eager = Dispatcher::new(DispatcherConfig::default());
            let mut lazy = Dispatcher::new(lazy_config());
            for (op, i, p, aux) in ops {
                match op {
                    0 => {
                        let a = eager.add_thread(ThreadId(i), reserved(p, aux));
                        let b = lazy.add_thread(ThreadId(i), reserved(p, aux));
                        prop_assert_eq!(a, b);
                    }
                    1 => {
                        let _ = eager.add_thread(ThreadId(i), ThreadClass::BestEffort);
                        let _ = lazy.add_thread(ThreadId(i), ThreadClass::BestEffort);
                    }
                    2 => {
                        let _ = eager.remove_thread(ThreadId(i));
                        let _ = lazy.remove_thread(ThreadId(i));
                    }
                    3 => {
                        let _ = eager.block(ThreadId(i));
                        let _ = lazy.block(ThreadId(i));
                    }
                    4 => {
                        let _ = eager.unblock(ThreadId(i));
                        let _ = lazy.unblock(ThreadId(i));
                    }
                    5 => {
                        let r = Reservation::new(
                            Proportion::from_ppt(p),
                            Period::from_millis(aux),
                        );
                        let _ = eager.set_reservation(ThreadId(i), r);
                        let _ = lazy.set_reservation(ThreadId(i), r);
                    }
                    6 => {
                        // Advance exactly to the eager dispatcher's next
                        // period boundary (its timers fire *on* the grid, so
                        // its re-arm-from-now cannot drift off it).
                        if let Some(t) = eager.next_timer_expiry() {
                            eager.advance_to(t);
                            lazy.advance_to(t);
                        }
                    }
                    7 => {
                        // Both modes report the same changed-usage feed,
                        // order aside.
                        let mut a = Vec::new();
                        eager.drain_usage_changes(|id, r| a.push((id, r.to_bits())));
                        let mut b = Vec::new();
                        lazy.drain_usage_changes(|id, r| b.push((id, r.to_bits())));
                        a.sort_unstable();
                        b.sort_unstable();
                        prop_assert_eq!(a, b, "usage feeds diverged");
                    }
                    _ => {
                        let oe = eager.dispatch();
                        let ol = lazy.dispatch();
                        prop_assert_eq!(oe.thread, ol.thread, "picks diverged");
                        if let Some(t) = oe.thread {
                            prop_assert_eq!(oe.quantum_us, ol.quantum_us, "quanta diverged");
                            let used = (oe.quantum_us * (aux % 3 + 1) / 3).max(1);
                            eager.charge(t, used).expect("picked exists");
                            lazy.charge(t, used).expect("picked exists");
                        }
                    }
                }
                eager.assert_consistent();
                lazy.assert_consistent();
            }
            // Settle the lazy backlog, then every observable must agree.
            lazy.sync_all();
            let ids: Vec<ThreadId> = eager.thread_ids().collect();
            prop_assert_eq!(&ids, &lazy.thread_ids().collect::<Vec<_>>());
            for id in ids {
                prop_assert_eq!(eager.thread_state(id), lazy.thread_state(id));
                prop_assert_eq!(eager.reservation(id), lazy.reservation(id));
                let (ea, la) = (eager.usage(id).unwrap(), lazy.usage(id).unwrap());
                prop_assert_eq!(
                    format!("{ea:?}"),
                    format!("{la:?}"),
                    "account diverged for {:?}", id
                );
            }
            let (es, ls) = (eager.stats(), lazy.stats());
            prop_assert_eq!(es.dispatches, ls.dispatches);
            prop_assert_eq!(es.context_switches, ls.context_switches);
            prop_assert_eq!(es.period_rollovers, ls.period_rollovers);
            prop_assert_eq!(es.deadlines_missed, ls.deadlines_missed);
        }

        /// The span fast path (next-quantum cache + batched `charge_span`)
        /// against an always-settled reference: identical op sequences
        /// drive two lazy dispatcher pairs (two "CPUs"), the fast side
        /// charging spans through [`Dispatcher::charge_span`] and the
        /// reference settling every charge through [`Dispatcher::charge`].
        /// The per-id charge re-ranks the heap after every span, so the
        /// reference can never serve a pick from the cache; picks, quanta,
        /// post-sync accounts and stats must nevertheless match exactly,
        /// across wakes, re-reservations and cross-CPU migrations.
        #[test]
        fn span_fast_path_matches_settled_reference(
            ops in proptest::collection::vec((0u8..12, 0u64..8, 0u32..500, 1u64..40), 1..150),
        ) {
            let mut fast = [Dispatcher::new(lazy_config()), Dispatcher::new(lazy_config())];
            let mut refd = [Dispatcher::new(lazy_config()), Dispatcher::new(lazy_config())];
            for (op, i, p, aux) in ops {
                let id = ThreadId(i);
                let cpu = (aux % 2) as usize;
                match op {
                    0 => {
                        // A thread lives on at most one CPU at a time.
                        if fast.iter().all(|d| d.thread_state(id).is_none()) {
                            let a = fast[cpu].add_thread(id, reserved(p, aux));
                            let b = refd[cpu].add_thread(id, reserved(p, aux));
                            prop_assert_eq!(a, b);
                        }
                    }
                    1 => {
                        if fast.iter().all(|d| d.thread_state(id).is_none()) {
                            let _ = fast[cpu].add_thread(id, ThreadClass::BestEffort);
                            let _ = refd[cpu].add_thread(id, ThreadClass::BestEffort);
                        }
                    }
                    2 => for c in 0..2 {
                        let a = fast[c].remove_thread(id);
                        let b = refd[c].remove_thread(id);
                        prop_assert_eq!(a.is_ok(), b.is_ok());
                    },
                    3 => for c in 0..2 {
                        let _ = fast[c].block(id);
                        let _ = refd[c].block(id);
                    },
                    4 => for c in 0..2 {
                        let _ = fast[c].unblock(id);
                        let _ = refd[c].unblock(id);
                    },
                    5 => {
                        let r = Reservation::new(
                            Proportion::from_ppt(p),
                            Period::from_millis(aux),
                        );
                        for c in 0..2 {
                            let a = fast[c].set_reservation(id, r);
                            let b = refd[c].set_reservation(id, r);
                            prop_assert_eq!(a.is_ok(), b.is_ok());
                        }
                    }
                    6 => for c in 0..2 {
                        // Both CPUs share one clock, like the machine layer.
                        let t = fast[c].now_us() + aux * 499;
                        fast[c].advance_to(t);
                        refd[c].advance_to(t);
                    },
                    7 => {
                        // Cross-CPU migration; both sides move the same
                        // thread (which also settles any open span batch).
                        let to = 1 - cpu;
                        if let Ok(t) = fast[cpu].take_thread(id) {
                            let tr = refd[cpu].take_thread(id).expect("mirrored population");
                            fast[to].inject_thread(t).unwrap();
                            refd[to].inject_thread(tr).unwrap();
                        }
                    }
                    _ => {
                        let of = fast[cpu].dispatch();
                        let or = refd[cpu].dispatch();
                        prop_assert_eq!(of.thread, or.thread, "picks diverged");
                        prop_assert_eq!(of.quantum_us, or.quantum_us, "quanta diverged");
                        if let Some(t) = of.thread {
                            let used = (of.quantum_us * (p as u64 % 3 + 1) / 3).max(1);
                            fast[cpu].charge_span(used);
                            refd[cpu].charge(t, used).expect("picked exists");
                        }
                    }
                }
                for c in 0..2 {
                    fast[c].assert_consistent();
                    refd[c].assert_consistent();
                }
            }
            // Settle the batches, then every observable must agree.
            for c in 0..2 {
                fast[c].sync_all();
                refd[c].sync_all();
                let ids: Vec<ThreadId> = refd[c].thread_ids().collect();
                prop_assert_eq!(&ids, &fast[c].thread_ids().collect::<Vec<_>>());
                for id in ids {
                    prop_assert_eq!(refd[c].thread_state(id), fast[c].thread_state(id));
                    let (ra, fa) = (refd[c].usage(id).unwrap(), fast[c].usage(id).unwrap());
                    prop_assert_eq!(
                        format!("{ra:?}"),
                        format!("{fa:?}"),
                        "account diverged for {:?} on cpu {}", id, c
                    );
                }
                let (rs, fs) = (refd[c].stats(), fast[c].stats());
                prop_assert_eq!(rs.dispatches, fs.dispatches);
                prop_assert_eq!(rs.context_switches, fs.context_switches);
                prop_assert_eq!(rs.period_rollovers, fs.period_rollovers);
                prop_assert_eq!(rs.deadlines_missed, fs.deadlines_missed);
            }
        }
    }
}
