//! The proportion/period dispatcher.
//!
//! This is the "low-level scheduler" of §3.1: at each dispatch point it
//! picks the runnable thread with the highest goodness, charges the running
//! thread for the CPU it consumed, throttles threads that have used their
//! allocation for the current period, and rolls per-thread periods when
//! their timers expire.  It is a pure state machine over an explicit clock
//! (`now_us`), driven either by the discrete-event simulator or by the
//! wall-clock executor.

use crate::accounting::UsageAccount;
use crate::admission::AdmissionControl;
use crate::error::SchedError;
use crate::goodness::{best_effort_goodness, rbs_goodness};
use crate::reservation::Reservation;
use crate::timerlist::TimerList;
use crate::types::{Proportion, ThreadId, ThreadState};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How a thread is scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadClass {
    /// Scheduled by the RBS with a proportion/period reservation.
    Reserved(Reservation),
    /// Scheduled best-effort (the default Linux policy); only runs when no
    /// reserved thread is runnable.
    BestEffort,
}

/// Configuration for the dispatcher.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DispatcherConfig {
    /// The dispatch (timer) interval in microseconds; the paper's prototype
    /// uses 1 ms.
    pub dispatch_interval_us: u64,
    /// Admission threshold for reservations.
    pub admission_threshold_ppt: u32,
    /// Modelled cost of one dispatch decision (`schedule()` plus
    /// `do_timers()`), in microseconds.  Used for the Figure 8 overhead
    /// experiment; set to 0.0 to disable overhead modelling.
    pub dispatch_cost_us: f64,
    /// Additional modelled cost per context switch (cache and TLB refill),
    /// in microseconds.
    pub context_switch_cost_us: f64,
    /// Time slice granted to best-effort threads, in microseconds.
    pub best_effort_slice_us: u64,
}

impl Default for DispatcherConfig {
    fn default() -> Self {
        Self {
            dispatch_interval_us: 1_000,
            admission_threshold_ppt: AdmissionControl::DEFAULT_THRESHOLD_PPT,
            // Calibrated so that a 250 µs dispatch interval costs ≈ 2.7 % of
            // the CPU, matching the knee reported in Figure 8.
            dispatch_cost_us: 6.8,
            context_switch_cost_us: 1.9,
            best_effort_slice_us: 10_000,
        }
    }
}

/// Counters describing what the dispatcher has done so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DispatchStats {
    /// Number of dispatch decisions taken.
    pub dispatches: u64,
    /// Number of dispatch decisions that switched to a different thread.
    pub context_switches: u64,
    /// Number of per-thread period boundaries processed.
    pub period_rollovers: u64,
    /// Number of missed deadlines detected at period boundaries.
    pub deadlines_missed: u64,
    /// Modelled scheduling overhead accumulated so far, in microseconds.
    pub overhead_us: f64,
    /// Time during which no thread was runnable, in microseconds.
    pub idle_us: u64,
}

/// The result of one dispatch decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchOutcome {
    /// The thread selected to run, or `None` if nothing is runnable.
    pub thread: Option<ThreadId>,
    /// How long the selection is valid for, in microseconds: the caller
    /// should run the thread (or idle) for at most this long before calling
    /// [`Dispatcher::advance_to`] and dispatching again.
    pub quantum_us: u64,
}

#[derive(Debug)]
struct ThreadEntry {
    class: ThreadClass,
    state: ThreadState,
    account: UsageAccount,
    remaining_slice_us: u64,
    /// Monotonic sequence number of the last time this thread was picked;
    /// used to round-robin among equal-goodness best-effort threads.
    last_picked_seq: u64,
}

/// A thread lifted out of one dispatcher for insertion into another — the
/// payload of a cross-CPU migration.
///
/// Carries everything the destination CPU needs to continue the thread's
/// current period exactly where the source CPU left it: the class
/// (reservation), run state, the full usage account (budget, consumption,
/// lifetime totals), the remaining best-effort slice and the armed period
/// boundary.  Obtained from [`Dispatcher::take_thread`], consumed by
/// [`Dispatcher::inject_thread`].
#[derive(Debug, Clone, Copy)]
pub struct MigratedThread {
    /// The migrating thread's id.
    pub id: ThreadId,
    class: ThreadClass,
    state: ThreadState,
    account: UsageAccount,
    remaining_slice_us: u64,
    /// The expiry the source CPU had armed for the thread's next period
    /// boundary.  Carried verbatim so a mid-period reservation change
    /// (which re-arms from the change instant, not the period start)
    /// survives migration.
    next_boundary_us: Option<u64>,
}

impl MigratedThread {
    /// The thread's scheduling class (reservation or best-effort).
    pub fn class(&self) -> ThreadClass {
        self.class
    }

    /// The thread's run state at the moment it was taken.
    pub fn state(&self) -> ThreadState {
        self.state
    }

    /// The thread's usage account at the moment it was taken.
    pub fn account(&self) -> UsageAccount {
        self.account
    }
}

/// The reservation-based dispatcher.
///
/// # Examples
///
/// ```
/// use rrs_scheduler::{Dispatcher, DispatcherConfig, Period, Proportion, Reservation, ThreadClass, ThreadId};
///
/// let mut d = Dispatcher::new(DispatcherConfig::default());
/// let r = Reservation::new(Proportion::from_ppt(500), Period::from_millis(10));
/// d.add_thread(ThreadId(1), ThreadClass::Reserved(r)).unwrap();
/// let outcome = d.dispatch();
/// assert_eq!(outcome.thread, Some(ThreadId(1)));
/// ```
#[derive(Debug)]
pub struct Dispatcher {
    config: DispatcherConfig,
    admission: AdmissionControl,
    threads: BTreeMap<ThreadId, ThreadEntry>,
    timers: TimerList,
    now_us: u64,
    running: Option<ThreadId>,
    pick_seq: u64,
    stats: DispatchStats,
    missed_since_last_poll: u64,
}

impl Dispatcher {
    /// Creates a dispatcher with the given configuration.
    pub fn new(config: DispatcherConfig) -> Self {
        Self {
            admission: AdmissionControl::with_threshold(Proportion::from_ppt(
                config.admission_threshold_ppt,
            )),
            config,
            threads: BTreeMap::new(),
            timers: TimerList::new(),
            now_us: 0,
            running: None,
            pick_seq: 0,
            stats: DispatchStats::default(),
            missed_since_last_poll: 0,
        }
    }

    /// Current scheduler time in microseconds.
    pub fn now_us(&self) -> u64 {
        self.now_us
    }

    /// The configuration the dispatcher was created with.
    pub fn config(&self) -> DispatcherConfig {
        self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> DispatchStats {
        self.stats
    }

    /// Number of threads known to the dispatcher.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// All registered thread ids, in id order.
    pub fn thread_ids(&self) -> Vec<ThreadId> {
        self.threads.keys().copied().collect()
    }

    /// Sum of the proportions of all reserved threads, in parts per
    /// thousand.  Unlike [`Proportion`], this is not clamped at 1000, so an
    /// oversubscribed system reports a value above 1000.
    pub fn total_reserved_ppt(&self) -> u32 {
        self.threads
            .values()
            .filter_map(|t| match t.class {
                ThreadClass::Reserved(r) => Some(r.proportion.ppt()),
                ThreadClass::BestEffort => None,
            })
            .sum()
    }

    /// Sum of the proportions of all reserved threads, clamped to the full
    /// CPU.
    pub fn total_reserved(&self) -> Proportion {
        Proportion::from_ppt(self.total_reserved_ppt())
    }

    /// Returns `true` if the sum of reservations exceeds the admission
    /// threshold.
    pub fn is_overloaded(&self) -> bool {
        self.total_reserved_ppt() > self.admission.threshold().ppt()
    }

    /// The admission controller (threshold and headroom queries).
    pub fn admission(&self) -> AdmissionControl {
        self.admission
    }

    /// Registers a thread.  Reserved threads are subject to admission
    /// control; the new thread starts Ready with a full budget and a period
    /// timer armed at `now + period`.
    pub fn add_thread(&mut self, id: ThreadId, class: ThreadClass) -> Result<(), SchedError> {
        if self.threads.contains_key(&id) {
            return Err(SchedError::DuplicateThread(id));
        }
        let account = match class {
            ThreadClass::Reserved(r) => {
                self.admission
                    .try_admit(self.total_reserved(), r.proportion)?;
                self.timers.arm(id, self.now_us + r.period.as_micros());
                UsageAccount::new(self.now_us, r.budget_micros())
            }
            ThreadClass::BestEffort => UsageAccount::new(self.now_us, 0),
        };
        let mut entry = ThreadEntry {
            class,
            state: ThreadState::Ready,
            account,
            remaining_slice_us: self.config.best_effort_slice_us,
            last_picked_seq: 0,
        };
        entry.account.mark_runnable();
        self.threads.insert(id, entry);
        Ok(())
    }

    /// Registers a thread whose reservation was already admitted by a
    /// higher authority (the adaptive controller), bypassing this
    /// dispatcher's own admission test.
    ///
    /// The controller squishes allocations instead of rejecting them, so
    /// its running jobs can legitimately sit at the admission threshold;
    /// re-checking here would spuriously reject late arrivals.  Fails only
    /// on a duplicate id.
    pub fn add_thread_preadmitted(
        &mut self,
        id: ThreadId,
        reservation: Reservation,
    ) -> Result<(), SchedError> {
        self.add_thread(id, ThreadClass::BestEffort)?;
        self.set_reservation(id, reservation)
            .expect("thread was just added");
        Ok(())
    }

    /// Lifts a thread out of this dispatcher for migration to another CPU,
    /// preserving its class, run state and usage account.
    ///
    /// A running thread is demoted to Ready (it is not running on the
    /// destination CPU); its period timer is cancelled here and re-armed by
    /// [`Dispatcher::inject_thread`].
    pub fn take_thread(&mut self, id: ThreadId) -> Result<MigratedThread, SchedError> {
        let entry = self
            .threads
            .remove(&id)
            .ok_or(SchedError::UnknownThread(id))?;
        let next_boundary_us = self.timers.expiry_of(id);
        self.timers.cancel(id);
        if self.running == Some(id) {
            self.running = None;
        }
        let state = match entry.state {
            ThreadState::Running => ThreadState::Ready,
            other => other,
        };
        Ok(MigratedThread {
            id,
            class: entry.class,
            state,
            account: entry.account,
            remaining_slice_us: entry.remaining_slice_us,
            next_boundary_us,
        })
    }

    /// Inserts a migrated thread, continuing its current period.
    ///
    /// The period timer is re-armed at exactly the boundary the source CPU
    /// had scheduled (falling back to `period_start + period` for
    /// payloads with no armed timer); if that boundary has already passed
    /// on this CPU's clock it fires at the next
    /// [`Dispatcher::advance_to`].  Admission is not re-checked: placement
    /// is the migrating authority's responsibility, exactly like the
    /// controller's actuation path.
    pub fn inject_thread(&mut self, thread: MigratedThread) -> Result<(), SchedError> {
        if self.threads.contains_key(&thread.id) {
            return Err(SchedError::DuplicateThread(thread.id));
        }
        if let ThreadClass::Reserved(r) = thread.class {
            let boundary = thread
                .next_boundary_us
                .unwrap_or(thread.account.period_start_us + r.period.as_micros());
            self.timers.arm(thread.id, boundary.max(self.now_us + 1));
        }
        self.threads.insert(
            thread.id,
            ThreadEntry {
                class: thread.class,
                state: thread.state,
                account: thread.account,
                remaining_slice_us: thread.remaining_slice_us,
                last_picked_seq: 0,
            },
        );
        Ok(())
    }

    /// The earliest armed period timer, if any — the next instant at which
    /// an idle CPU has work to do.
    pub fn next_timer_expiry(&self) -> Option<u64> {
        self.timers.next_expiry()
    }

    /// Re-books idle time after an idle dispatch.
    ///
    /// An idle [`Dispatcher::dispatch`] charges its returned quantum to
    /// [`DispatchStats::idle_us`] on the assumption that the caller idles
    /// for exactly that long.  A lockstep driver may advance the shared
    /// clock by a different amount — less when another CPU's thread
    /// yielded early, more when it fast-forwards across a quiet gap — and
    /// calls this with what was recorded and what actually elapsed so the
    /// statistic stays truthful.
    pub fn rebook_idle_us(&mut self, recorded_us: u64, actual_us: u64) {
        self.stats.idle_us = self.stats.idle_us.saturating_sub(recorded_us) + actual_us;
    }

    /// Removes a thread from the dispatcher.
    pub fn remove_thread(&mut self, id: ThreadId) -> Result<(), SchedError> {
        if self.threads.remove(&id).is_none() {
            return Err(SchedError::UnknownThread(id));
        }
        self.timers.cancel(id);
        if self.running == Some(id) {
            self.running = None;
        }
        Ok(())
    }

    /// Changes a thread's reservation — the actuation path used by the
    /// controller every controller period.  The change takes effect
    /// immediately for the budget of future periods; the current period's
    /// budget is adjusted proportionally if it grows.
    ///
    /// Admission is *not* re-checked here: the controller is responsible for
    /// keeping the total under the threshold (it squishes allocations when
    /// the system would otherwise be oversubscribed).
    pub fn set_reservation(
        &mut self,
        id: ThreadId,
        reservation: Reservation,
    ) -> Result<(), SchedError> {
        let now = self.now_us;
        let entry = self
            .threads
            .get_mut(&id)
            .ok_or(SchedError::UnknownThread(id))?;
        let old_period = match entry.class {
            ThreadClass::Reserved(r) => Some(r.period),
            ThreadClass::BestEffort => None,
        };
        entry.class = ThreadClass::Reserved(reservation);
        let new_budget = reservation.budget_micros();
        // Growing the budget mid-period can un-throttle the thread; a
        // shrinking budget only applies from the next period so work already
        // granted is not clawed back.
        if new_budget > entry.account.budget_us {
            entry.account.budget_us = new_budget;
            if entry.state == ThreadState::Throttled && !entry.account.exhausted() {
                entry.state = ThreadState::Ready;
                entry.account.mark_runnable();
            }
        }
        match old_period {
            Some(p) if p == reservation.period => {}
            _ => {
                // New period length: re-arm the period timer from now.
                self.timers.arm(id, now + reservation.period.as_micros());
            }
        }
        Ok(())
    }

    /// Returns a thread's current reservation, if it is reserved.
    pub fn reservation(&self, id: ThreadId) -> Option<Reservation> {
        match self.threads.get(&id)?.class {
            ThreadClass::Reserved(r) => Some(r),
            ThreadClass::BestEffort => None,
        }
    }

    /// Returns a thread's current state.
    pub fn thread_state(&self, id: ThreadId) -> Option<ThreadState> {
        self.threads.get(&id).map(|t| t.state)
    }

    /// Returns a copy of a thread's usage account.
    pub fn usage(&self, id: ThreadId) -> Option<UsageAccount> {
        self.threads.get(&id).map(|t| t.account)
    }

    /// Borrows a thread's usage account without copying — the controller's
    /// per-cycle accounting read.
    pub fn usage_ref(&self, id: ThreadId) -> Option<&UsageAccount> {
        self.threads.get(&id).map(|t| &t.account)
    }

    /// Visits every thread's usage account in one pass without allocating.
    /// Drives the controller's usage feedback in the simulator and the
    /// wall-clock executor.
    pub fn for_each_usage(&self, mut f: impl FnMut(ThreadId, &UsageAccount)) {
        for (&id, t) in &self.threads {
            f(id, &t.account);
        }
    }

    /// Marks a thread as blocked (waiting on I/O or a queue).
    pub fn block(&mut self, id: ThreadId) -> Result<(), SchedError> {
        let entry = self
            .threads
            .get_mut(&id)
            .ok_or(SchedError::UnknownThread(id))?;
        if entry.state == ThreadState::Exited {
            return Err(SchedError::InvalidState(id, "thread has exited"));
        }
        entry.state = ThreadState::Blocked;
        if self.running == Some(id) {
            self.running = None;
        }
        Ok(())
    }

    /// Wakes a blocked thread.  Threads that are throttled stay throttled
    /// until their next period even if woken.
    pub fn unblock(&mut self, id: ThreadId) -> Result<(), SchedError> {
        let entry = self
            .threads
            .get_mut(&id)
            .ok_or(SchedError::UnknownThread(id))?;
        if entry.state == ThreadState::Blocked {
            if entry.account.exhausted() && matches!(entry.class, ThreadClass::Reserved(_)) {
                entry.state = ThreadState::Throttled;
            } else {
                entry.state = ThreadState::Ready;
                entry.account.mark_runnable();
            }
        }
        Ok(())
    }

    /// Advances the scheduler clock to `now_us`, processing any period
    /// timers that expired on the way (`do_timers()` in the prototype).
    pub fn advance_to(&mut self, now_us: u64) {
        if now_us <= self.now_us {
            return;
        }
        self.now_us = now_us;
        let expired = self.timers.pop_expired(now_us);
        for id in expired {
            let Some(entry) = self.threads.get_mut(&id) else {
                continue;
            };
            let ThreadClass::Reserved(r) = entry.class else {
                continue;
            };
            let missed = entry.account.roll_period(now_us, r.budget_micros());
            self.stats.period_rollovers += 1;
            if missed {
                self.stats.deadlines_missed += 1;
                self.missed_since_last_poll += 1;
            }
            if entry.state == ThreadState::Throttled {
                entry.state = ThreadState::Ready;
            }
            if entry.state.is_runnable() {
                entry.account.mark_runnable();
            }
            // Re-arm for the next period boundary.
            self.timers.arm(id, now_us + r.period.as_micros());
        }
    }

    /// Returns (and clears) the number of deadlines missed since the last
    /// call.  The controller polls this to decide whether to grow its spare
    /// capacity by lowering the admission threshold.
    pub fn take_missed_deadlines(&mut self) -> u64 {
        std::mem::take(&mut self.missed_since_last_poll)
    }

    fn goodness_of(&self, entry: &ThreadEntry) -> i64 {
        match entry.class {
            ThreadClass::Reserved(r) => rbs_goodness(r.period),
            ThreadClass::BestEffort => best_effort_goodness(entry.remaining_slice_us),
        }
    }

    /// Takes one dispatch decision: picks the runnable thread with the
    /// highest goodness and returns it together with the quantum it may run
    /// for.  Charges the modelled dispatch overhead.
    pub fn dispatch(&mut self) -> DispatchOutcome {
        self.stats.dispatches += 1;
        self.stats.overhead_us += self.config.dispatch_cost_us;

        // Recalculate best-effort slices when every runnable best-effort
        // thread has exhausted its slice (the Linux "recalculate goodness"
        // pass).
        let needs_recalc = self.threads.values().any(|t| {
            t.state.is_runnable()
                && matches!(t.class, ThreadClass::BestEffort)
                && t.remaining_slice_us > 0
        });
        if !needs_recalc {
            let slice = self.config.best_effort_slice_us;
            for t in self.threads.values_mut() {
                if matches!(t.class, ThreadClass::BestEffort) {
                    t.remaining_slice_us = slice;
                }
            }
        }

        // Pick the best runnable thread: highest goodness, ties broken by
        // least recently picked.
        let mut best: Option<(i64, u64, ThreadId)> = None;
        for (&id, entry) in &self.threads {
            if !entry.state.is_runnable() {
                continue;
            }
            let g = self.goodness_of(entry);
            let key = (g, u64::MAX - entry.last_picked_seq, id.0);
            match best {
                None => best = Some((key.0, key.1, id)),
                Some((bg, bseq, _)) if (key.0, key.1) > (bg, bseq) => {
                    best = Some((key.0, key.1, id))
                }
                _ => {}
            }
        }

        let Some((_, _, picked)) = best else {
            // Nothing runnable: idle until the next timer or one dispatch
            // interval, whichever comes first.
            let quantum = self
                .timers
                .next_expiry()
                .map(|t| t.saturating_sub(self.now_us).max(1))
                .unwrap_or(self.config.dispatch_interval_us)
                .min(self.config.dispatch_interval_us.max(1));
            self.stats.idle_us += quantum;
            if self.running.is_some() {
                self.running = None;
            }
            return DispatchOutcome {
                thread: None,
                quantum_us: quantum,
            };
        };

        if self.running != Some(picked) {
            self.stats.context_switches += 1;
            self.stats.overhead_us += self.config.context_switch_cost_us;
        }
        self.running = Some(picked);
        self.pick_seq += 1;

        let entry = self.threads.get_mut(&picked).expect("picked exists");
        entry.last_picked_seq = self.pick_seq;
        entry.state = ThreadState::Running;
        entry.account.mark_runnable();

        let budget_cap = match entry.class {
            ThreadClass::Reserved(_) => entry.account.remaining_us().max(1),
            ThreadClass::BestEffort => entry.remaining_slice_us.max(1),
        };
        let quantum = self.config.dispatch_interval_us.max(1).min(budget_cap);
        DispatchOutcome {
            thread: Some(picked),
            quantum_us: quantum,
        }
    }

    /// Charges `us` microseconds of CPU consumption to a thread, throttling
    /// it if its budget (or best-effort slice) is exhausted.
    pub fn charge(&mut self, id: ThreadId, us: u64) -> Result<(), SchedError> {
        let entry = self
            .threads
            .get_mut(&id)
            .ok_or(SchedError::UnknownThread(id))?;
        entry.account.charge(us);
        match entry.class {
            ThreadClass::Reserved(_) => {
                if entry.account.exhausted() && entry.state.is_runnable() {
                    entry.state = ThreadState::Throttled;
                    if self.running == Some(id) {
                        self.running = None;
                    }
                } else if entry.state == ThreadState::Running {
                    entry.state = ThreadState::Ready;
                }
            }
            ThreadClass::BestEffort => {
                entry.remaining_slice_us = entry.remaining_slice_us.saturating_sub(us);
                if entry.state == ThreadState::Running {
                    entry.state = ThreadState::Ready;
                }
            }
        }
        Ok(())
    }

    /// Convenience: advances time by one quantum for the outcome of a
    /// dispatch where the selected thread ran for the full quantum.
    pub fn run_quantum(&mut self) -> DispatchOutcome {
        let outcome = self.dispatch();
        if let Some(id) = outcome.thread {
            self.charge(id, outcome.quantum_us).expect("thread exists");
        }
        self.advance_to(self.now_us + outcome.quantum_us);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Period;

    fn reserved(ppt: u32, period_ms: u64) -> ThreadClass {
        ThreadClass::Reserved(Reservation::new(
            Proportion::from_ppt(ppt),
            Period::from_millis(period_ms),
        ))
    }

    #[test]
    fn add_and_remove_threads() {
        let mut d = Dispatcher::new(DispatcherConfig::default());
        d.add_thread(ThreadId(1), reserved(100, 30)).unwrap();
        assert_eq!(
            d.add_thread(ThreadId(1), ThreadClass::BestEffort),
            Err(SchedError::DuplicateThread(ThreadId(1)))
        );
        assert_eq!(d.thread_count(), 1);
        d.remove_thread(ThreadId(1)).unwrap();
        assert_eq!(
            d.remove_thread(ThreadId(1)),
            Err(SchedError::UnknownThread(ThreadId(1)))
        );
    }

    #[test]
    fn admission_control_rejects_oversubscription() {
        let mut d = Dispatcher::new(DispatcherConfig::default());
        d.add_thread(ThreadId(1), reserved(600, 30)).unwrap();
        let err = d.add_thread(ThreadId(2), reserved(500, 30)).unwrap_err();
        assert!(matches!(err, SchedError::Oversubscribed { .. }));
        // Best-effort threads are always admitted.
        d.add_thread(ThreadId(3), ThreadClass::BestEffort).unwrap();
        assert_eq!(d.total_reserved().ppt(), 600);
        assert!(!d.is_overloaded());
    }

    #[test]
    fn reserved_thread_beats_best_effort() {
        let mut d = Dispatcher::new(DispatcherConfig::default());
        d.add_thread(ThreadId(1), ThreadClass::BestEffort).unwrap();
        d.add_thread(ThreadId(2), reserved(100, 30)).unwrap();
        assert_eq!(d.dispatch().thread, Some(ThreadId(2)));
    }

    #[test]
    fn shorter_period_beats_longer_period() {
        let mut d = Dispatcher::new(DispatcherConfig::default());
        d.add_thread(ThreadId(1), reserved(100, 100)).unwrap();
        d.add_thread(ThreadId(2), reserved(100, 10)).unwrap();
        assert_eq!(d.dispatch().thread, Some(ThreadId(2)));
    }

    #[test]
    fn exhausted_thread_is_throttled_until_next_period() {
        let mut d = Dispatcher::new(DispatcherConfig::default());
        // 10 % of 10 ms = 1 ms budget, equal to one dispatch interval.
        d.add_thread(ThreadId(1), reserved(100, 10)).unwrap();
        let o = d.dispatch();
        assert_eq!(o.thread, Some(ThreadId(1)));
        assert_eq!(o.quantum_us, 1000);
        d.charge(ThreadId(1), 1000).unwrap();
        assert_eq!(d.thread_state(ThreadId(1)), Some(ThreadState::Throttled));
        // Nothing else to run.
        d.advance_to(2000);
        assert_eq!(d.dispatch().thread, None);
        // At the period boundary the thread is replenished.
        d.advance_to(10_000);
        assert_eq!(d.thread_state(ThreadId(1)), Some(ThreadState::Ready));
        assert_eq!(d.dispatch().thread, Some(ThreadId(1)));
    }

    #[test]
    fn quantum_is_capped_by_remaining_budget() {
        let mut d = Dispatcher::new(DispatcherConfig::default());
        // 5 % of 10 ms = 500 µs budget < 1 ms dispatch interval.
        d.add_thread(ThreadId(1), reserved(50, 10)).unwrap();
        let o = d.dispatch();
        assert_eq!(o.quantum_us, 500);
    }

    #[test]
    fn best_effort_threads_round_robin() {
        let config = DispatcherConfig {
            best_effort_slice_us: 2_000,
            ..DispatcherConfig::default()
        };
        let mut d = Dispatcher::new(config);
        d.add_thread(ThreadId(1), ThreadClass::BestEffort).unwrap();
        d.add_thread(ThreadId(2), ThreadClass::BestEffort).unwrap();
        let mut picks = Vec::new();
        for _ in 0..6 {
            let o = d.dispatch();
            let id = o.thread.unwrap();
            picks.push(id);
            d.charge(id, o.quantum_us).unwrap();
            d.advance_to(d.now_us() + o.quantum_us);
        }
        // Both threads get picked (no starvation of one by the other).
        assert!(picks.contains(&ThreadId(1)));
        assert!(picks.contains(&ThreadId(2)));
    }

    #[test]
    fn blocked_thread_is_not_dispatched() {
        let mut d = Dispatcher::new(DispatcherConfig::default());
        d.add_thread(ThreadId(1), reserved(100, 10)).unwrap();
        d.block(ThreadId(1)).unwrap();
        assert_eq!(d.dispatch().thread, None);
        d.unblock(ThreadId(1)).unwrap();
        assert_eq!(d.dispatch().thread, Some(ThreadId(1)));
    }

    #[test]
    fn unblocking_exhausted_thread_keeps_it_throttled() {
        let mut d = Dispatcher::new(DispatcherConfig::default());
        d.add_thread(ThreadId(1), reserved(100, 10)).unwrap();
        let o = d.dispatch();
        d.charge(ThreadId(1), o.quantum_us).unwrap();
        d.block(ThreadId(1)).unwrap();
        d.unblock(ThreadId(1)).unwrap();
        assert_eq!(d.thread_state(ThreadId(1)), Some(ThreadState::Throttled));
    }

    #[test]
    fn idle_system_reports_idle_time() {
        let mut d = Dispatcher::new(DispatcherConfig::default());
        let o = d.dispatch();
        assert_eq!(o.thread, None);
        assert!(o.quantum_us > 0);
        assert!(d.stats().idle_us > 0);
    }

    #[test]
    fn missed_deadline_detected_under_oversubscription() {
        // Two threads each wanting 60 % of a 10 ms period: only ~100 % is
        // available so someone must miss.
        let config = DispatcherConfig {
            admission_threshold_ppt: 1000,
            dispatch_cost_us: 0.0,
            context_switch_cost_us: 0.0,
            ..DispatcherConfig::default()
        };
        let mut d = Dispatcher::new(config);
        d.add_thread(ThreadId(1), reserved(600, 10)).unwrap();
        // Admission would reject a second 60 % reservation, so admit it
        // small and grow it through the controller's actuation path (which
        // does not re-check admission).
        d.add_thread(ThreadId(2), reserved(100, 10)).unwrap();
        d.set_reservation(
            ThreadId(2),
            Reservation::new(Proportion::from_ppt(600), Period::from_millis(10)),
        )
        .unwrap();
        assert!(d.is_overloaded());
        // Run for 30 ms of simulated time.
        while d.now_us() < 30_000 {
            d.run_quantum();
        }
        assert!(d.stats().deadlines_missed > 0);
        assert!(d.take_missed_deadlines() > 0);
        assert_eq!(d.take_missed_deadlines(), 0);
    }

    #[test]
    fn set_reservation_changes_budget_and_can_unthrottle() {
        let mut d = Dispatcher::new(DispatcherConfig::default());
        d.add_thread(ThreadId(1), reserved(100, 10)).unwrap();
        let o = d.dispatch();
        d.charge(ThreadId(1), o.quantum_us).unwrap();
        assert_eq!(d.thread_state(ThreadId(1)), Some(ThreadState::Throttled));
        // Doubling the proportion mid-period un-throttles the thread.
        d.set_reservation(
            ThreadId(1),
            Reservation::new(Proportion::from_ppt(200), Period::from_millis(10)),
        )
        .unwrap();
        assert_eq!(d.thread_state(ThreadId(1)), Some(ThreadState::Ready));
        assert_eq!(d.reservation(ThreadId(1)).unwrap().proportion.ppt(), 200);
    }

    #[test]
    fn set_reservation_on_unknown_thread_fails() {
        let mut d = Dispatcher::new(DispatcherConfig::default());
        let r = Reservation::new(Proportion::from_ppt(10), Period::from_millis(10));
        assert!(d.set_reservation(ThreadId(9), r).is_err());
    }

    #[test]
    fn best_effort_thread_can_become_reserved() {
        let mut d = Dispatcher::new(DispatcherConfig::default());
        d.add_thread(ThreadId(1), ThreadClass::BestEffort).unwrap();
        assert!(d.reservation(ThreadId(1)).is_none());
        d.set_reservation(
            ThreadId(1),
            Reservation::new(Proportion::from_ppt(50), Period::from_millis(30)),
        )
        .unwrap();
        assert_eq!(d.reservation(ThreadId(1)).unwrap().proportion.ppt(), 50);
        assert_eq!(d.total_reserved().ppt(), 50);
    }

    #[test]
    fn reserved_thread_gets_its_proportion_over_time() {
        let config = DispatcherConfig {
            dispatch_cost_us: 0.0,
            context_switch_cost_us: 0.0,
            ..DispatcherConfig::default()
        };
        let mut d = Dispatcher::new(config);
        // 30 % reservation competing with a best-effort hog.
        d.add_thread(ThreadId(1), reserved(300, 10)).unwrap();
        d.add_thread(ThreadId(2), ThreadClass::BestEffort).unwrap();
        while d.now_us() < 1_000_000 {
            d.run_quantum();
        }
        let usage = d.usage(ThreadId(1)).unwrap();
        let fraction = usage.total_used_us as f64 / 1_000_000.0;
        assert!(
            (fraction - 0.3).abs() < 0.02,
            "reserved thread got {fraction} of the CPU"
        );
        // The best-effort hog gets the rest.
        let hog = d.usage(ThreadId(2)).unwrap();
        let hog_fraction = hog.total_used_us as f64 / 1_000_000.0;
        assert!(hog_fraction > 0.6, "hog got {hog_fraction}");
    }

    #[test]
    fn overhead_accumulates_with_dispatches() {
        let mut d = Dispatcher::new(DispatcherConfig::default());
        d.add_thread(ThreadId(1), reserved(500, 10)).unwrap();
        for _ in 0..10 {
            d.run_quantum();
        }
        let stats = d.stats();
        assert_eq!(stats.dispatches, 10);
        assert!(stats.overhead_us >= 10.0 * 5.0);
    }

    #[test]
    fn preadmitted_thread_bypasses_admission_but_not_duplicates() {
        let mut d = Dispatcher::new(DispatcherConfig::default());
        d.add_thread(ThreadId(1), reserved(900, 10)).unwrap();
        // The regular path is full; a pre-admitted reservation still lands.
        let r = Reservation::new(Proportion::from_ppt(300), Period::from_millis(10));
        d.add_thread_preadmitted(ThreadId(2), r).unwrap();
        assert_eq!(d.reservation(ThreadId(2)), Some(r));
        assert!(d.is_overloaded());
        assert_eq!(
            d.add_thread_preadmitted(ThreadId(2), r),
            Err(SchedError::DuplicateThread(ThreadId(2)))
        );
    }

    #[test]
    fn usage_views_agree() {
        let mut d = Dispatcher::new(DispatcherConfig::default());
        d.add_thread(ThreadId(1), reserved(300, 10)).unwrap();
        d.add_thread(ThreadId(2), reserved(200, 10)).unwrap();
        for _ in 0..5 {
            d.run_quantum();
        }
        let mut visited = 0;
        d.for_each_usage(|id, acct| {
            visited += 1;
            assert_eq!(d.usage(id).unwrap().total_used_us, acct.total_used_us);
            assert_eq!(d.usage_ref(id).unwrap().total_used_us, acct.total_used_us);
        });
        assert_eq!(visited, 2);
        assert!(d.usage_ref(ThreadId(9)).is_none());
    }

    #[test]
    fn take_and_inject_preserve_account_and_throttle() {
        let mut src = Dispatcher::new(DispatcherConfig::default());
        let mut dst = Dispatcher::new(DispatcherConfig::default());
        src.add_thread(ThreadId(1), reserved(100, 10)).unwrap();
        // Exhaust the budget so the thread is throttled mid-period.
        let o = src.dispatch();
        src.charge(ThreadId(1), o.quantum_us).unwrap();
        assert_eq!(src.thread_state(ThreadId(1)), Some(ThreadState::Throttled));
        let used = src.usage(ThreadId(1)).unwrap().total_used_us;

        let taken = src.take_thread(ThreadId(1)).unwrap();
        assert_eq!(taken.state(), ThreadState::Throttled);
        assert!(src.take_thread(ThreadId(1)).is_err(), "already taken");
        dst.inject_thread(taken).unwrap();
        // Still throttled on the destination, with the account intact.
        assert_eq!(dst.thread_state(ThreadId(1)), Some(ThreadState::Throttled));
        assert_eq!(dst.usage(ThreadId(1)).unwrap().total_used_us, used);
        assert_eq!(dst.dispatch().thread, None);
        // The period boundary scheduled by the source replenishes it here.
        dst.advance_to(10_000);
        assert_eq!(dst.thread_state(ThreadId(1)), Some(ThreadState::Ready));
        assert_eq!(dst.dispatch().thread, Some(ThreadId(1)));
        // Duplicate injection is rejected.
        assert_eq!(
            dst.inject_thread(MigratedThread {
                id: ThreadId(1),
                class: reserved(10, 10),
                state: ThreadState::Ready,
                account: UsageAccount::new(0, 0),
                remaining_slice_us: 0,
                next_boundary_us: None,
            }),
            Err(SchedError::DuplicateThread(ThreadId(1)))
        );
    }

    #[test]
    fn taking_the_running_thread_demotes_it_to_ready() {
        let mut d = Dispatcher::new(DispatcherConfig::default());
        d.add_thread(ThreadId(1), reserved(500, 10)).unwrap();
        assert_eq!(d.dispatch().thread, Some(ThreadId(1)));
        let taken = d.take_thread(ThreadId(1)).unwrap();
        assert_eq!(taken.state(), ThreadState::Ready);
        assert!(matches!(taken.class(), ThreadClass::Reserved(_)));
        // The source no longer schedules it.
        assert_eq!(d.dispatch().thread, None);
    }

    #[test]
    fn next_timer_expiry_tracks_reserved_threads() {
        let mut d = Dispatcher::new(DispatcherConfig::default());
        assert_eq!(d.next_timer_expiry(), None);
        d.add_thread(ThreadId(1), reserved(100, 10)).unwrap();
        assert_eq!(d.next_timer_expiry(), Some(10_000));
    }

    #[test]
    fn advance_to_is_monotone() {
        let mut d = Dispatcher::new(DispatcherConfig::default());
        d.advance_to(1000);
        d.advance_to(500); // ignored
        assert_eq!(d.now_us(), 1000);
    }
}
