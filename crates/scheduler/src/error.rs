//! Scheduler error types.

use crate::types::{Proportion, ThreadId};

/// Errors returned by the dispatcher and admission control.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedError {
    /// The thread id is not registered with the dispatcher.
    UnknownThread(ThreadId),
    /// The thread id is already registered.
    DuplicateThread(ThreadId),
    /// Admitting the reservation would oversubscribe the CPU.
    Oversubscribed {
        /// The proportion that was requested.
        requested: Proportion,
        /// The proportion still available under the admission threshold.
        available: Proportion,
    },
    /// The operation is invalid in the thread's current state.
    InvalidState(ThreadId, &'static str),
}

impl std::fmt::Display for SchedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedError::UnknownThread(id) => write!(f, "unknown thread {id}"),
            SchedError::DuplicateThread(id) => write!(f, "thread {id} already registered"),
            SchedError::Oversubscribed {
                requested,
                available,
            } => write!(
                f,
                "admission rejected: requested {requested} but only {available} available"
            ),
            SchedError::InvalidState(id, what) => {
                write!(f, "invalid operation on thread {id}: {what}")
            }
        }
    }
}

impl std::error::Error for SchedError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(SchedError::UnknownThread(ThreadId(3))
            .to_string()
            .contains("t3"));
        assert!(SchedError::DuplicateThread(ThreadId(4))
            .to_string()
            .contains("already"));
        let e = SchedError::Oversubscribed {
            requested: Proportion::from_ppt(500),
            available: Proportion::from_ppt(100),
        };
        assert!(e.to_string().contains("500‰"));
        assert!(e.to_string().contains("100‰"));
        assert!(SchedError::InvalidState(ThreadId(1), "not blocked")
            .to_string()
            .contains("not blocked"));
    }

    #[test]
    fn errors_are_std_errors() {
        let e: Box<dyn std::error::Error> = Box::new(SchedError::UnknownThread(ThreadId(1)));
        assert!(e.to_string().contains("unknown"));
    }
}
