//! The span-charge settlement rule.
//!
//! The dispatcher's batched span charging
//! ([`Dispatcher::charge_span`](crate::Dispatcher::charge_span)) defers the
//! account update and run-queue re-rank for consecutive charges to the same
//! reserved thread, settling only when the deferral could change a dispatch
//! decision or an observable statistic.  This module is the single source
//! of truth for *when* that is, shared by the batched sim path and the
//! per-charge reference path
//! ([`Dispatcher::charge`](crate::Dispatcher::charge), which the lockstep
//! simulator and the wall-clock executor drive), so the two modes cannot
//! drift: the eager path derives its throttle decision from the same
//! [`charge_exhausts`] arithmetic the batcher uses to detect the throttle
//! edge.

use crate::accounting::UsageAccount;

/// Why a batched span charge had to settle instead of accumulating.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SettleReason {
    /// The thread is best-effort: its goodness is derived from the
    /// remaining time slice, so every charge can re-rank it (and rotate
    /// the round-robin), and none may be deferred.
    GoodnessCrossing,
    /// The clock reached the thread's next period boundary: the pending
    /// usage belongs to the finished period and must land in the account
    /// before the boundary rolls.
    PeriodBoundary,
    /// This charge exhausts the period budget: the thread throttles *now*,
    /// which unlinks it from the run queue and arms its release timer.
    ThrottleEdge,
    /// A zero-length charge still publishes the Running → Ready transition
    /// and re-watches the thread for the controller's usage feed, so it
    /// takes the full per-charge path.
    ZeroSpan,
}

/// Returns `true` when charging `us` more microseconds — on top of what the
/// account has already recorded this period plus `pending_us` not yet
/// settled — exhausts the period budget.
///
/// This is exactly [`UsageAccount::exhausted`] evaluated *after* such a
/// charge would land: the eager charge path asserts the equivalence, so the
/// batcher's throttle-edge prediction and the reference's post-charge
/// throttle test are one rule.
pub fn charge_exhausts(account: &UsageAccount, pending_us: u64, us: u64) -> bool {
    let used = account.used_this_period_us + pending_us + us;
    used >= account.budget_us && used > 0
}

/// Decides whether a span charge of `us` microseconds may be deferred.
///
/// `None` means the charge can accumulate into the pending batch: the
/// thread is reserved, the clock has not reached its next period boundary,
/// the budget survives the charge, and the charge is non-zero (so no state
/// or watch transition is due).  Any `Some` reason requires settling the
/// batch and taking the full per-charge path.
///
/// The window end is not a reason *here* because it is not visible from a
/// single charge: the dispatcher settles explicitly at every operation that
/// can observe or perturb the account (dispatch after a queue mutation,
/// block, migration, re-reservation, sync, usage drain).
pub fn span_settle_reason(
    best_effort: bool,
    us: u64,
    pending_us: u64,
    account: &UsageAccount,
    now_us: u64,
    next_boundary_us: u64,
) -> Option<SettleReason> {
    if best_effort {
        return Some(SettleReason::GoodnessCrossing);
    }
    if now_us >= next_boundary_us {
        return Some(SettleReason::PeriodBoundary);
    }
    if charge_exhausts(account, pending_us, us) {
        return Some(SettleReason::ThrottleEdge);
    }
    if us == 0 {
        return Some(SettleReason::ZeroSpan);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn account(budget: u64, used: u64) -> UsageAccount {
        let mut a = UsageAccount::new(0, budget);
        a.charge(used);
        a
    }

    #[test]
    fn best_effort_never_defers() {
        let a = account(0, 0);
        assert_eq!(
            span_settle_reason(true, 100, 0, &a, 0, u64::MAX),
            Some(SettleReason::GoodnessCrossing)
        );
    }

    #[test]
    fn boundary_reached_settles_before_the_roll() {
        let a = account(1000, 10);
        assert_eq!(
            span_settle_reason(false, 10, 0, &a, 5_000, 5_000),
            Some(SettleReason::PeriodBoundary)
        );
        assert_eq!(span_settle_reason(false, 10, 0, &a, 4_999, 5_000), None);
    }

    #[test]
    fn throttle_edge_counts_the_pending_batch() {
        let a = account(1000, 600);
        // 600 used + 300 pending + 99 = 999 < 1000: still deferrable.
        assert_eq!(span_settle_reason(false, 99, 300, &a, 0, 1), None);
        // ... + 100 = 1000: exhausts, settle and throttle.
        assert_eq!(
            span_settle_reason(false, 100, 300, &a, 0, 1),
            Some(SettleReason::ThrottleEdge)
        );
        assert!(charge_exhausts(&a, 300, 100));
        assert!(!charge_exhausts(&a, 300, 99));
    }

    #[test]
    fn zero_span_takes_the_full_path() {
        let a = account(1000, 10);
        assert_eq!(
            span_settle_reason(false, 0, 0, &a, 0, 1),
            Some(SettleReason::ZeroSpan)
        );
    }

    #[test]
    fn zero_on_zero_budget_is_not_exhaustion() {
        // A fresh zero-budget account with nothing used stays unexhausted
        // (`used > 0` guards the degenerate case), matching
        // `UsageAccount::exhausted`.
        let a = account(0, 0);
        assert!(!charge_exhausts(&a, 0, 0));
        assert_eq!(charge_exhausts(&a, 0, 0), a.exhausted());
        // Any actual use on a zero budget is exhaustion.
        assert!(charge_exhausts(&a, 0, 1));
    }

    /// The prediction matches the account's own post-charge verdict.
    #[test]
    fn charge_exhausts_matches_exhausted_after_charging() {
        for budget in [0u64, 1, 500, 1000] {
            for used in [0u64, 1, 499, 500, 999, 1000] {
                for us in [0u64, 1, 500, 1000] {
                    let mut a = account(budget, used);
                    let predicted = charge_exhausts(&a, 0, us);
                    a.charge(us);
                    assert_eq!(
                        predicted,
                        a.exhausted(),
                        "budget={budget} used={used} us={us}"
                    );
                }
            }
        }
    }
}
