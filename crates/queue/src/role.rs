//! Endpoint roles on a symbiotic interface.

use serde::{Deserialize, Serialize};

/// The role a job plays with respect to a progress metric.
///
/// Figure 3 of the paper defines `R_{t,i}` as `-1` if thread `t` is a
/// producer of queue `i` and `+1` if it is a consumer: a full queue means
/// the consumer should speed up (positive pressure) while the producer
/// should slow down (negative pressure).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Role {
    /// The job inserts items into the queue.
    Producer,
    /// The job removes items from the queue.
    Consumer,
}

impl Role {
    /// Returns the sign multiplier `R_{t,i}` from Figure 3.
    pub fn sign(self) -> f64 {
        match self {
            Role::Producer => -1.0,
            Role::Consumer => 1.0,
        }
    }

    /// Returns the opposite role.
    pub fn opposite(self) -> Role {
        match self {
            Role::Producer => Role::Consumer,
            Role::Consumer => Role::Producer,
        }
    }

    /// Returns `true` for [`Role::Producer`].
    pub fn is_producer(self) -> bool {
        matches!(self, Role::Producer)
    }

    /// Returns `true` for [`Role::Consumer`].
    pub fn is_consumer(self) -> bool {
        matches!(self, Role::Consumer)
    }
}

impl std::fmt::Display for Role {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Role::Producer => write!(f, "producer"),
            Role::Consumer => write!(f, "consumer"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signs_match_figure_3() {
        assert_eq!(Role::Producer.sign(), -1.0);
        assert_eq!(Role::Consumer.sign(), 1.0);
    }

    #[test]
    fn opposite_is_involutive() {
        assert_eq!(Role::Producer.opposite(), Role::Consumer);
        assert_eq!(Role::Consumer.opposite(), Role::Producer);
        assert_eq!(Role::Producer.opposite().opposite(), Role::Producer);
    }

    #[test]
    fn predicates() {
        assert!(Role::Producer.is_producer());
        assert!(!Role::Producer.is_consumer());
        assert!(Role::Consumer.is_consumer());
    }

    #[test]
    fn display() {
        assert_eq!(Role::Producer.to_string(), "producer");
        assert_eq!(Role::Consumer.to_string(), "consumer");
    }
}
