//! Symbiotic interfaces: progress-exposing queues and the metric registry.
//!
//! The paper's key idea for monitoring progress without breaking the
//! OS/application boundary is the *symbiotic interface* (§3.2): a
//! communication abstraction (shared queue, pipe, socket) that exposes its
//! fill level, size and each endpoint's role (producer or consumer) to the
//! scheduler through a *meta-interface*.  The controller then infers
//! progress: a filling queue means the consumer is falling behind, a
//! draining queue means the producer is.
//!
//! This crate provides that substrate:
//!
//! * [`BoundedBuffer`] — a thread-safe bounded FIFO whose fill level is
//!   observable, the direct analogue of the paper's shared-queue library.
//! * [`Pipe`] — a byte-oriented bounded channel modelling the in-kernel pipe
//!   and socket implementations the authors extended.
//! * [`ProgressMetric`] — the trait through which the controller samples any
//!   progress source; [`FillSample`] is one observation.
//! * [`MetricRegistry`] — the meta-interface: jobs register `(metric, role)`
//!   attachments and the controller enumerates them each period.
//! * [`Role`] — producer or consumer, which flips the sign of the pressure.
//! * [`pseudo`] — pseudo-progress metrics (§4.5) that map an arbitrary
//!   counter (keys cracked, digits computed) onto a virtual fill level so
//!   legacy jobs can participate in real-rate scheduling.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bounded;
pub mod metric;
pub mod pipe;
pub mod pseudo;
pub mod registry;
pub mod role;

pub use bounded::{BoundedBuffer, Full};
pub use metric::{ConstantMetric, FillSample, ProgressMetric, SharedMetric};
pub use pipe::Pipe;
pub use pseudo::{CounterProgress, RateTarget};
pub use registry::{Attachment, AttachmentId, JobKey, MetricRegistry};
pub use role::Role;
