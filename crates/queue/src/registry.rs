//! The meta-interface: registration of progress metrics with the scheduler.
//!
//! "When an application initializes a symbiotic interface ... the interface
//! creates a linkage to the kernel using a meta-interface system call that
//! registers the queue (or socket, etc.) and the application's use of that
//! queue (producer or consumer)" (§3.2).  `MetricRegistry` plays the role of
//! that kernel-side table: jobs register attachments, the controller
//! enumerates and samples them every controller period.
//!
//! Attachments are stored bucketed by job so the controller's sense stage
//! can sample one job's metrics in `O(log jobs + attachments-of-job)` and —
//! via [`MetricRegistry::for_each_attachment`] — without allocating.

use crate::metric::{FillSample, SharedMetric};
use crate::role::Role;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Identifies a job (a collection of cooperating threads) to the registry.
///
/// The registry is deliberately agnostic about what a job is; the scheduler
/// and simulator map their own thread identifiers onto `JobKey`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobKey(pub u64);

/// Identifies one registered attachment (one `(job, metric, role)` linkage).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttachmentId(u64);

/// One `(job, metric, role)` linkage.
#[derive(Clone)]
pub struct Attachment {
    /// The attachment identifier assigned at registration.
    pub id: AttachmentId,
    /// The job this attachment belongs to.
    pub job: JobKey,
    /// The job's role on the metric (producer or consumer).
    pub role: Role,
    /// The progress metric itself.
    pub metric: SharedMetric,
}

impl Attachment {
    /// Samples the metric and returns the observation.
    pub fn sample(&self) -> FillSample {
        self.metric.sample()
    }

    /// The signed, centred pressure contribution `R_{t,i} · F_{t,i}` of this
    /// attachment (Figure 3).
    pub fn signed_pressure(&self) -> f64 {
        self.role.sign() * self.sample().centered()
    }
}

impl std::fmt::Debug for Attachment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Attachment")
            .field("id", &self.id)
            .field("job", &self.job)
            .field("role", &self.role)
            .field("metric", &self.metric.name())
            .finish()
    }
}

/// The registry of progress-metric attachments (the meta-interface).
///
/// Cloning the registry is cheap; clones share the same underlying table, so
/// the simulator, the workloads and the controller can all hold a handle.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use rrs_queue::{BoundedBuffer, JobKey, MetricRegistry, Role};
///
/// let registry = MetricRegistry::new();
/// let queue = Arc::new(BoundedBuffer::<u32>::new("frames", 8));
/// registry.register(JobKey(1), Role::Producer, queue.clone());
/// registry.register(JobKey(2), Role::Consumer, queue);
/// assert_eq!(registry.attachments_for(JobKey(2)).len(), 1);
/// ```
#[derive(Clone, Default)]
pub struct MetricRegistry {
    inner: Arc<RegistryInner>,
}

#[derive(Default)]
struct RegistryInner {
    next_id: AtomicU64,
    version: AtomicU64,
    table: RwLock<Buckets>,
}

/// Attachments bucketed by owning job, plus an id → job index so
/// [`MetricRegistry::unregister`] stays cheap.
#[derive(Default)]
struct Buckets {
    by_job: BTreeMap<JobKey, Vec<Attachment>>,
    owner_of: BTreeMap<AttachmentId, JobKey>,
}

impl MetricRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a `(job, role, metric)` linkage and returns its id.
    pub fn register(&self, job: JobKey, role: Role, metric: SharedMetric) -> AttachmentId {
        let id = AttachmentId(self.inner.next_id.fetch_add(1, Ordering::Relaxed));
        let attachment = Attachment {
            id,
            job,
            role,
            metric,
        };
        let mut table = self.inner.table.write();
        table.by_job.entry(job).or_default().push(attachment);
        table.owner_of.insert(id, job);
        self.inner.version.fetch_add(1, Ordering::Relaxed);
        id
    }

    /// Removes an attachment; returns `true` if it existed.
    pub fn unregister(&self, id: AttachmentId) -> bool {
        let mut table = self.inner.table.write();
        let Some(job) = table.owner_of.remove(&id) else {
            return false;
        };
        if let Some(bucket) = table.by_job.get_mut(&job) {
            bucket.retain(|a| a.id != id);
            if bucket.is_empty() {
                table.by_job.remove(&job);
            }
        }
        self.inner.version.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Removes every attachment belonging to `job` and returns how many were
    /// removed.  Called when a job exits.
    pub fn unregister_job(&self, job: JobKey) -> usize {
        let mut table = self.inner.table.write();
        let Some(bucket) = table.by_job.remove(&job) else {
            return 0;
        };
        for a in &bucket {
            table.owner_of.remove(&a.id);
        }
        self.inner.version.fetch_add(1, Ordering::Relaxed);
        bucket.len()
    }

    /// A counter bumped on every successful [`register`](Self::register),
    /// [`unregister`](Self::unregister) and
    /// [`unregister_job`](Self::unregister_job).  Callers that cache derived
    /// per-job state (e.g. "does this job have a progress metric?") can
    /// compare versions instead of re-enumerating the table.
    pub fn version(&self) -> u64 {
        self.inner.version.load(Ordering::Relaxed)
    }

    /// Returns all attachments for the given job.
    ///
    /// Allocates a fresh `Vec`; the controller's hot path uses
    /// [`MetricRegistry::for_each_attachment`] instead.
    pub fn attachments_for(&self, job: JobKey) -> Vec<Attachment> {
        self.inner
            .table
            .read()
            .by_job
            .get(&job)
            .cloned()
            .unwrap_or_default()
    }

    /// Visits every attachment of `job` without allocating.
    ///
    /// The registry's read lock is held for the duration of the call; do not
    /// register or unregister from inside `f`.
    pub fn for_each_attachment(&self, job: JobKey, mut f: impl FnMut(&Attachment)) {
        if let Some(bucket) = self.inner.table.read().by_job.get(&job) {
            for a in bucket {
                f(a);
            }
        }
    }

    /// Returns `true` if `job` has at least one registered attachment —
    /// the "progress metric visible" input to the Figure 2 taxonomy.
    pub fn has_attachments(&self, job: JobKey) -> bool {
        self.inner.table.read().by_job.contains_key(&job)
    }

    /// Returns every registered attachment, ordered by job then
    /// registration order.
    pub fn all_attachments(&self) -> Vec<Attachment> {
        self.inner
            .table
            .read()
            .by_job
            .values()
            .flatten()
            .cloned()
            .collect()
    }

    /// Returns the distinct jobs that currently have attachments.
    pub fn jobs(&self) -> Vec<JobKey> {
        self.inner.table.read().by_job.keys().copied().collect()
    }

    /// Returns the summed signed pressure `Σ_i R_{t,i} · F_{t,i}` for `job`,
    /// or `None` if the job has no attachments (i.e. no progress metric).
    /// Does not allocate.
    pub fn summed_pressure(&self, job: JobKey) -> Option<f64> {
        let table = self.inner.table.read();
        let bucket = table.by_job.get(&job)?;
        Some(bucket.iter().map(Attachment::signed_pressure).sum())
    }

    /// Number of registered attachments.
    pub fn len(&self) -> usize {
        self.inner.table.read().owner_of.len()
    }

    /// Returns `true` if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for MetricRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricRegistry")
            .field("attachments", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounded::BoundedBuffer;
    use crate::metric::ConstantMetric;

    fn buffer(capacity: usize) -> Arc<BoundedBuffer<u32>> {
        Arc::new(BoundedBuffer::new("q", capacity))
    }

    #[test]
    fn register_and_enumerate() {
        let reg = MetricRegistry::new();
        let q = buffer(4);
        reg.register(JobKey(1), Role::Producer, q.clone());
        reg.register(JobKey(2), Role::Consumer, q);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.jobs(), vec![JobKey(1), JobKey(2)]);
        assert_eq!(reg.attachments_for(JobKey(1)).len(), 1);
        assert_eq!(reg.attachments_for(JobKey(3)).len(), 0);
        assert!(reg.has_attachments(JobKey(1)));
        assert!(!reg.has_attachments(JobKey(3)));
    }

    #[test]
    fn unregister_by_id_and_by_job() {
        let reg = MetricRegistry::new();
        let q = buffer(4);
        let id = reg.register(JobKey(1), Role::Producer, q.clone());
        reg.register(JobKey(1), Role::Consumer, q.clone());
        reg.register(JobKey(2), Role::Consumer, q);
        assert!(reg.unregister(id));
        assert!(!reg.unregister(id));
        assert_eq!(reg.unregister_job(JobKey(1)), 1);
        assert_eq!(reg.len(), 1);
        assert!(!reg.is_empty());
        assert!(!reg.has_attachments(JobKey(1)));
    }

    #[test]
    fn version_bumps_on_every_mutation() {
        let reg = MetricRegistry::new();
        let v0 = reg.version();
        let id = reg.register(JobKey(1), Role::Producer, buffer(4));
        assert!(reg.version() > v0);
        let v1 = reg.version();
        assert!(reg.unregister(id));
        assert!(reg.version() > v1);
        let v2 = reg.version();
        // Failed unregister leaves the version alone.
        assert!(!reg.unregister(id));
        assert_eq!(reg.version(), v2);
        reg.register(JobKey(2), Role::Consumer, buffer(4));
        let v3 = reg.version();
        assert_eq!(reg.unregister_job(JobKey(2)), 1);
        assert!(reg.version() > v3);
    }

    #[test]
    fn clones_share_state() {
        let reg = MetricRegistry::new();
        let clone = reg.clone();
        clone.register(JobKey(7), Role::Consumer, buffer(2));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn signed_pressure_flips_for_producer() {
        let reg = MetricRegistry::new();
        let q = buffer(4);
        // Fill the queue completely: centred fill level = +1/2.
        for i in 0..4 {
            q.try_push(i).unwrap();
        }
        reg.register(JobKey(1), Role::Producer, q.clone());
        reg.register(JobKey(2), Role::Consumer, q);
        // Full queue: producer should slow down (negative), consumer speed up.
        assert_eq!(reg.summed_pressure(JobKey(1)), Some(-0.5));
        assert_eq!(reg.summed_pressure(JobKey(2)), Some(0.5));
    }

    #[test]
    fn summed_pressure_adds_multiple_queues() {
        let reg = MetricRegistry::new();
        // A pipeline stage that consumes from a full queue and produces into
        // an empty one is doubly behind: both terms push it positive.
        let full = Arc::new(ConstantMetric::new(100, 100));
        let empty = Arc::new(ConstantMetric::new(0, 100));
        reg.register(JobKey(5), Role::Consumer, full);
        reg.register(JobKey(5), Role::Producer, empty);
        let q = reg.summed_pressure(JobKey(5)).unwrap();
        assert_eq!(q, 1.0);
    }

    #[test]
    fn job_without_metrics_has_no_pressure() {
        let reg = MetricRegistry::new();
        assert_eq!(reg.summed_pressure(JobKey(9)), None);
    }

    #[test]
    fn for_each_attachment_visits_only_the_given_job() {
        let reg = MetricRegistry::new();
        let q = buffer(4);
        reg.register(JobKey(1), Role::Producer, q.clone());
        reg.register(JobKey(1), Role::Consumer, q.clone());
        reg.register(JobKey(2), Role::Consumer, q);
        let mut visited = 0;
        reg.for_each_attachment(JobKey(1), |a| {
            assert_eq!(a.job, JobKey(1));
            visited += 1;
        });
        assert_eq!(visited, 2);
        reg.for_each_attachment(JobKey(9), |_| visited += 100);
        assert_eq!(visited, 2);
    }

    #[test]
    fn attachment_debug_includes_metric_name() {
        let reg = MetricRegistry::new();
        reg.register(JobKey(1), Role::Consumer, buffer(2));
        let attachments = reg.all_attachments();
        let text = format!("{:?}", attachments[0]);
        assert!(text.contains("q"));
        assert!(format!("{reg:?}").contains("attachments"));
    }
}
