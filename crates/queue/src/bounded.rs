//! A thread-safe bounded FIFO exposing its fill level.

use crate::metric::{FillSample, ProgressMetric};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::time::Duration;

/// Error returned by [`BoundedBuffer::try_push`] when the buffer is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Full<T>(
    /// The item that could not be enqueued.
    pub T,
);

struct Inner<T> {
    queue: VecDeque<T>,
    total_pushed: u64,
    total_popped: u64,
}

/// A bounded multi-producer multi-consumer FIFO with an observable fill
/// level — the shared-queue symbiotic interface of §3.2.
///
/// The non-blocking `try_*` operations are used by the discrete-event
/// simulator (which models blocking itself); the blocking operations are
/// used by the wall-clock executor where real threads park on the buffer.
///
/// # Examples
///
/// ```
/// use rrs_queue::{BoundedBuffer, ProgressMetric};
///
/// let buf = BoundedBuffer::new("frames", 4);
/// buf.try_push(1).unwrap();
/// buf.try_push(2).unwrap();
/// assert_eq!(buf.len(), 2);
/// assert_eq!(buf.sample().fraction(), 0.5);
/// assert_eq!(buf.try_pop(), Some(1));
/// ```
pub struct BoundedBuffer<T> {
    name: String,
    capacity: usize,
    inner: Mutex<Inner<T>>,
    not_full: Condvar,
    not_empty: Condvar,
}

impl<T> BoundedBuffer<T> {
    /// Creates a buffer with the given name and capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(name: impl Into<String>, capacity: usize) -> Self {
        assert!(capacity > 0, "bounded buffer capacity must be non-zero");
        Self {
            name: name.into(),
            capacity,
            inner: Mutex::new(Inner {
                queue: VecDeque::with_capacity(capacity),
                total_pushed: 0,
                total_popped: 0,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    /// Returns the buffer capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Returns the current number of queued items.
    pub fn len(&self) -> usize {
        self.inner.lock().queue.len()
    }

    /// Returns `true` if the buffer holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns `true` if the buffer is at capacity.
    pub fn is_full(&self) -> bool {
        self.len() >= self.capacity
    }

    /// Total number of items ever pushed.
    pub fn total_pushed(&self) -> u64 {
        self.inner.lock().total_pushed
    }

    /// Total number of items ever popped.
    pub fn total_popped(&self) -> u64 {
        self.inner.lock().total_popped
    }

    /// Attempts to enqueue without blocking; returns the item back inside
    /// [`Full`] if the buffer is at capacity.
    pub fn try_push(&self, item: T) -> Result<(), Full<T>> {
        let mut inner = self.inner.lock();
        if inner.queue.len() >= self.capacity {
            return Err(Full(item));
        }
        inner.queue.push_back(item);
        inner.total_pushed += 1;
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Attempts to dequeue without blocking.
    pub fn try_pop(&self) -> Option<T> {
        let mut inner = self.inner.lock();
        let item = inner.queue.pop_front();
        if item.is_some() {
            inner.total_popped += 1;
            drop(inner);
            self.not_full.notify_one();
        }
        item
    }

    /// Enqueues, blocking until space is available or the timeout expires.
    ///
    /// Returns the item back inside [`Full`] on timeout.
    pub fn push_timeout(&self, item: T, timeout: Duration) -> Result<(), Full<T>> {
        let mut inner = self.inner.lock();
        if inner.queue.len() >= self.capacity
            && self
                .not_full
                .wait_while_for(&mut inner, |i| i.queue.len() >= self.capacity, timeout)
                .timed_out()
        {
            return Err(Full(item));
        }
        inner.queue.push_back(item);
        inner.total_pushed += 1;
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues, blocking until an item is available or the timeout expires.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<T> {
        let mut inner = self.inner.lock();
        if inner.queue.is_empty()
            && self
                .not_empty
                .wait_while_for(&mut inner, |i| i.queue.is_empty(), timeout)
                .timed_out()
        {
            return None;
        }
        let item = inner.queue.pop_front();
        if item.is_some() {
            inner.total_popped += 1;
            drop(inner);
            self.not_full.notify_one();
        }
        item
    }

    /// Removes and returns all queued items.
    pub fn drain(&self) -> Vec<T> {
        let mut inner = self.inner.lock();
        let drained: Vec<T> = inner.queue.drain(..).collect();
        inner.total_popped += drained.len() as u64;
        drop(inner);
        self.not_full.notify_all();
        drained
    }
}

impl<T: Send> ProgressMetric for BoundedBuffer<T> {
    fn sample(&self) -> FillSample {
        FillSample::new(self.len(), self.capacity)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

impl<T> std::fmt::Debug for BoundedBuffer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundedBuffer")
            .field("name", &self.name)
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo_order() {
        let buf = BoundedBuffer::new("q", 3);
        buf.try_push(1).unwrap();
        buf.try_push(2).unwrap();
        buf.try_push(3).unwrap();
        assert_eq!(buf.try_pop(), Some(1));
        assert_eq!(buf.try_pop(), Some(2));
        assert_eq!(buf.try_pop(), Some(3));
        assert_eq!(buf.try_pop(), None);
    }

    #[test]
    fn push_to_full_buffer_fails_and_returns_item() {
        let buf = BoundedBuffer::new("q", 1);
        buf.try_push(10).unwrap();
        assert!(buf.is_full());
        assert_eq!(buf.try_push(20), Err(Full(20)));
    }

    #[test]
    fn fill_sample_tracks_len() {
        let buf = BoundedBuffer::new("q", 4);
        assert_eq!(buf.sample().centered(), -0.5);
        buf.try_push(()).unwrap();
        buf.try_push(()).unwrap();
        assert_eq!(buf.sample().centered(), 0.0);
        buf.try_push(()).unwrap();
        buf.try_push(()).unwrap();
        assert_eq!(buf.sample().centered(), 0.5);
    }

    #[test]
    fn totals_count_all_traffic() {
        let buf = BoundedBuffer::new("q", 2);
        buf.try_push(1).unwrap();
        buf.try_push(2).unwrap();
        buf.try_pop();
        buf.try_push(3).unwrap();
        assert_eq!(buf.total_pushed(), 3);
        assert_eq!(buf.total_popped(), 1);
    }

    #[test]
    fn drain_empties_buffer() {
        let buf = BoundedBuffer::new("q", 4);
        for i in 0..4 {
            buf.try_push(i).unwrap();
        }
        let items = buf.drain();
        assert_eq!(items, vec![0, 1, 2, 3]);
        assert!(buf.is_empty());
        assert_eq!(buf.total_popped(), 4);
    }

    #[test]
    #[should_panic(expected = "capacity must be non-zero")]
    fn zero_capacity_rejected() {
        let _ = BoundedBuffer::<u8>::new("q", 0);
    }

    #[test]
    fn pop_timeout_returns_none_when_empty() {
        let buf: BoundedBuffer<u8> = BoundedBuffer::new("q", 1);
        assert_eq!(buf.pop_timeout(Duration::from_millis(10)), None);
    }

    #[test]
    fn push_timeout_times_out_when_full() {
        let buf = BoundedBuffer::new("q", 1);
        buf.try_push(1).unwrap();
        assert_eq!(buf.push_timeout(2, Duration::from_millis(10)), Err(Full(2)));
    }

    #[test]
    fn blocking_push_wakes_blocked_pop() {
        let buf = Arc::new(BoundedBuffer::new("q", 1));
        let consumer = {
            let buf = Arc::clone(&buf);
            std::thread::spawn(move || buf.pop_timeout(Duration::from_secs(5)))
        };
        std::thread::sleep(Duration::from_millis(20));
        buf.try_push(42).unwrap();
        assert_eq!(consumer.join().unwrap(), Some(42));
    }

    #[test]
    fn blocking_pop_wakes_blocked_push() {
        let buf = Arc::new(BoundedBuffer::new("q", 1));
        buf.try_push(1).unwrap();
        let producer = {
            let buf = Arc::clone(&buf);
            std::thread::spawn(move || buf.push_timeout(2, Duration::from_secs(5)))
        };
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(buf.pop_timeout(Duration::from_secs(1)), Some(1));
        assert!(producer.join().unwrap().is_ok());
    }

    #[test]
    fn concurrent_producers_and_consumers_conserve_items() {
        let buf = Arc::new(BoundedBuffer::new("q", 8));
        let per_thread = 500;
        let producers: Vec<_> = (0..2)
            .map(|_| {
                let buf = Arc::clone(&buf);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        while buf.try_push(i).is_err() {
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let buf = Arc::clone(&buf);
                std::thread::spawn(move || {
                    let mut got = 0usize;
                    while got < per_thread {
                        if buf.try_pop().is_some() {
                            got += 1;
                        } else {
                            std::thread::yield_now();
                        }
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 2 * per_thread);
        assert!(buf.is_empty());
    }

    proptest! {
        #[test]
        fn len_never_exceeds_capacity(ops in proptest::collection::vec(proptest::bool::ANY, 1..200), cap in 1usize..16) {
            let buf = BoundedBuffer::new("q", cap);
            for push in ops {
                if push {
                    let _ = buf.try_push(0u8);
                } else {
                    let _ = buf.try_pop();
                }
                prop_assert!(buf.len() <= cap);
                let s = buf.sample();
                prop_assert!(s.centered() >= -0.5 && s.centered() <= 0.5);
            }
        }

        #[test]
        fn pushed_minus_popped_equals_len(pushes in 0usize..50, pops in 0usize..50) {
            let buf = BoundedBuffer::new("q", 64);
            let mut ok_pushes = 0u64;
            for i in 0..pushes {
                if buf.try_push(i).is_ok() {
                    ok_pushes += 1;
                }
            }
            let mut ok_pops = 0u64;
            for _ in 0..pops {
                if buf.try_pop().is_some() {
                    ok_pops += 1;
                }
            }
            prop_assert_eq!(buf.total_pushed(), ok_pushes);
            prop_assert_eq!(buf.total_popped(), ok_pops);
            prop_assert_eq!(buf.len() as u64, ok_pushes - ok_pops);
        }
    }
}
