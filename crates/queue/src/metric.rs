//! The progress-metric abstraction sampled by the controller.

use std::sync::Arc;

/// One observation of a progress metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FillSample {
    /// Current number of items (or bytes) in the queue.
    pub level: usize,
    /// Queue capacity in the same unit as `level`.
    pub capacity: usize,
}

impl FillSample {
    /// Creates a sample; `level` is clamped to `capacity`.
    pub fn new(level: usize, capacity: usize) -> Self {
        Self {
            level: level.min(capacity),
            capacity,
        }
    }

    /// Fill fraction in `[0, 1]`; an empty (zero-capacity) queue reports 0.5
    /// so that it exerts no pressure.
    pub fn fraction(&self) -> f64 {
        if self.capacity == 0 {
            0.5
        } else {
            self.level as f64 / self.capacity as f64
        }
    }

    /// The centred fill level `F_{t,i} ∈ [-1/2, 1/2]` of Figure 3:
    /// `fill/size − 1/2`.  Half-full is 0, full is +1/2, empty is −1/2.
    pub fn centered(&self) -> f64 {
        self.fraction() - 0.5
    }

    /// Returns `true` if the queue is completely full.
    pub fn is_full(&self) -> bool {
        self.capacity > 0 && self.level >= self.capacity
    }

    /// Returns `true` if the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.level == 0
    }
}

/// A source of progress observations.
///
/// Implemented by [`crate::BoundedBuffer`], [`crate::Pipe`] and the
/// pseudo-progress adapters; the controller only ever sees this trait.
pub trait ProgressMetric: Send + Sync {
    /// Samples the current fill level.
    fn sample(&self) -> FillSample;

    /// A short human-readable name for traces and debugging.
    fn name(&self) -> &str {
        "progress-metric"
    }
}

/// A shareable, dynamically typed progress metric handle.
pub type SharedMetric = Arc<dyn ProgressMetric>;

impl<M: ProgressMetric + ?Sized> ProgressMetric for Arc<M> {
    fn sample(&self) -> FillSample {
        (**self).sample()
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

/// A fixed-value metric, useful in tests and for the constant-pressure
/// heuristic applied to miscellaneous jobs.
#[derive(Debug, Clone)]
pub struct ConstantMetric {
    sample: FillSample,
    name: String,
}

impl ConstantMetric {
    /// Creates a metric that always reports `level` out of `capacity`.
    pub fn new(level: usize, capacity: usize) -> Self {
        Self {
            sample: FillSample::new(level, capacity),
            name: format!("constant({level}/{capacity})"),
        }
    }

    /// Creates a metric from a centred pressure value in `[-1/2, 1/2]`.
    ///
    /// The capacity is fixed at 1000 "slots"; the level is chosen so that
    /// [`FillSample::centered`] returns approximately `pressure`.
    pub fn from_pressure(pressure: f64) -> Self {
        let p = pressure.clamp(-0.5, 0.5);
        let level = ((p + 0.5) * 1000.0).round() as usize;
        Self::new(level, 1000)
    }
}

impl ProgressMetric for ConstantMetric {
    fn sample(&self) -> FillSample {
        self.sample
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fraction_and_centering() {
        let half = FillSample::new(50, 100);
        assert_eq!(half.fraction(), 0.5);
        assert_eq!(half.centered(), 0.0);

        let full = FillSample::new(100, 100);
        assert_eq!(full.centered(), 0.5);
        assert!(full.is_full());

        let empty = FillSample::new(0, 100);
        assert_eq!(empty.centered(), -0.5);
        assert!(empty.is_empty());
    }

    #[test]
    fn level_is_clamped_to_capacity() {
        let s = FillSample::new(500, 100);
        assert_eq!(s.level, 100);
        assert!(s.is_full());
    }

    #[test]
    fn zero_capacity_exerts_no_pressure() {
        let s = FillSample::new(0, 0);
        assert_eq!(s.fraction(), 0.5);
        assert_eq!(s.centered(), 0.0);
        assert!(!s.is_full());
    }

    #[test]
    fn constant_metric_reports_fixed_sample() {
        let m = ConstantMetric::new(25, 100);
        assert_eq!(m.sample().fraction(), 0.25);
        assert!(m.name().contains("constant"));
    }

    #[test]
    fn constant_metric_from_pressure() {
        let m = ConstantMetric::from_pressure(0.25);
        assert!((m.sample().centered() - 0.25).abs() < 1e-3);
        let clamped = ConstantMetric::from_pressure(5.0);
        assert!((clamped.sample().centered() - 0.5).abs() < 1e-3);
    }

    #[test]
    fn arc_metric_delegates() {
        let m: SharedMetric = Arc::new(ConstantMetric::new(10, 20));
        assert_eq!(m.sample().fraction(), 0.5);
        assert!(m.name().contains("constant"));
    }

    proptest! {
        #[test]
        fn centered_is_in_half_open_band(level in 0usize..10_000, capacity in 1usize..10_000) {
            let s = FillSample::new(level, capacity);
            let c = s.centered();
            prop_assert!((-0.5..=0.5).contains(&c));
        }

        #[test]
        fn fraction_is_monotone_in_level(capacity in 1usize..1000, a in 0usize..1000, b in 0usize..1000) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let s_lo = FillSample::new(lo, capacity);
            let s_hi = FillSample::new(hi, capacity);
            prop_assert!(s_lo.fraction() <= s_hi.fraction() + 1e-12);
        }
    }
}
