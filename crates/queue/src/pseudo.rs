//! Pseudo-progress metrics for jobs without a natural queue.
//!
//! §4.5 of the paper suggests that "a pure computation (finding digits of pi
//! or cracking passwords) could use a metric such as the number of keys it
//! has attempted" — a *pseudo-progress metric* that maps the job's own
//! notion of progress into the queue-based meta-interface.  This module
//! provides that mapping: a monotonically increasing work counter is
//! compared against a target rate, and the shortfall or surplus is exposed
//! as a virtual fill level.

use crate::metric::{FillSample, ProgressMetric};
use parking_lot::Mutex;

/// The target rate a counter-based job is expected to sustain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateTarget {
    /// Desired work units per second.
    pub units_per_second: f64,
    /// Window, expressed in seconds of target work, that corresponds to the
    /// full span of the virtual queue.  A larger window makes the virtual
    /// fill level move more slowly.
    pub window_seconds: f64,
}

impl RateTarget {
    /// Creates a rate target.
    ///
    /// # Panics
    ///
    /// Panics unless both fields are positive.
    pub fn new(units_per_second: f64, window_seconds: f64) -> Self {
        assert!(units_per_second > 0.0, "target rate must be positive");
        assert!(window_seconds > 0.0, "window must be positive");
        Self {
            units_per_second,
            window_seconds,
        }
    }
}

struct CounterState {
    /// Total work units completed, reported by the job.
    completed: f64,
    /// Time of the last `advance_time` call, in seconds.
    now: f64,
    /// Work units that *should* have been completed by `now`.
    expected: f64,
}

/// A pseudo-progress metric driven by a work counter and a target rate.
///
/// The virtual queue is considered *full* when the job has fallen one full
/// window behind its target (it urgently needs CPU, like the consumer of a
/// full queue) and *empty* when it has run one full window ahead.
///
/// # Examples
///
/// ```
/// use rrs_queue::{CounterProgress, ProgressMetric, RateTarget};
///
/// let m = CounterProgress::new("pi-digits", RateTarget::new(100.0, 1.0));
/// m.advance_time(1.0);          // one second passes ...
/// m.record_work(50.0);          // ... but only half the target work got done
/// assert!(m.sample().centered() > 0.0); // so the job is behind: positive pressure
/// ```
pub struct CounterProgress {
    name: String,
    target: RateTarget,
    state: Mutex<CounterState>,
    /// Resolution of the virtual queue in slots.
    resolution: usize,
}

impl CounterProgress {
    /// Creates a counter-progress metric with a virtual queue of 1000 slots.
    pub fn new(name: impl Into<String>, target: RateTarget) -> Self {
        Self {
            name: name.into(),
            target,
            state: Mutex::new(CounterState {
                completed: 0.0,
                now: 0.0,
                expected: 0.0,
            }),
            resolution: 1000,
        }
    }

    /// Reports that the job completed `units` more units of work.
    pub fn record_work(&self, units: f64) {
        let mut s = self.state.lock();
        s.completed += units.max(0.0);
    }

    /// Advances the metric's notion of time to `now` seconds, growing the
    /// expected amount of work accordingly.  Time never moves backwards.
    pub fn advance_time(&self, now: f64) {
        let mut s = self.state.lock();
        if now > s.now {
            let dt = now - s.now;
            s.expected += dt * self.target.units_per_second;
            s.now = now;
        }
    }

    /// Returns how many work units the job is behind target (negative when
    /// it is ahead).
    pub fn lag_units(&self) -> f64 {
        let s = self.state.lock();
        s.expected - s.completed
    }

    /// Returns the configured target.
    pub fn target(&self) -> RateTarget {
        self.target
    }
}

impl ProgressMetric for CounterProgress {
    fn sample(&self) -> FillSample {
        // Map lag in [-window, +window] (in units of work) onto a virtual
        // queue: lag 0 is half-full, one full window behind is full.
        let window_units = self.target.units_per_second * self.target.window_seconds;
        let lag = self.lag_units();
        let frac = (0.5 + 0.5 * (lag / window_units)).clamp(0.0, 1.0);
        let level = (frac * self.resolution as f64).round() as usize;
        FillSample::new(level, self.resolution)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn on_target_job_is_half_full() {
        let m = CounterProgress::new("job", RateTarget::new(10.0, 1.0));
        m.advance_time(2.0);
        m.record_work(20.0);
        assert!((m.sample().centered()).abs() < 1e-3);
        assert_eq!(m.lag_units(), 0.0);
    }

    #[test]
    fn lagging_job_exerts_positive_pressure() {
        let m = CounterProgress::new("job", RateTarget::new(10.0, 1.0));
        m.advance_time(1.0);
        // No work recorded: one second (= one window) behind, queue is full.
        assert!((m.sample().centered() - 0.5).abs() < 1e-3);
        assert!(m.lag_units() > 0.0);
    }

    #[test]
    fn ahead_job_exerts_negative_pressure() {
        let m = CounterProgress::new("job", RateTarget::new(10.0, 1.0));
        m.advance_time(1.0);
        m.record_work(30.0);
        assert!(m.sample().centered() < 0.0);
        assert!(m.lag_units() < 0.0);
    }

    #[test]
    fn pressure_is_clamped_at_extremes() {
        let m = CounterProgress::new("job", RateTarget::new(10.0, 1.0));
        m.advance_time(100.0); // 100 windows behind
        assert_eq!(m.sample().centered(), 0.5);

        let ahead = CounterProgress::new("job", RateTarget::new(10.0, 1.0));
        ahead.record_work(1_000_000.0);
        ahead.advance_time(0.001);
        assert!((ahead.sample().centered() + 0.5).abs() < 1e-3);
    }

    #[test]
    fn time_never_moves_backwards() {
        let m = CounterProgress::new("job", RateTarget::new(10.0, 1.0));
        m.advance_time(5.0);
        let lag_before = m.lag_units();
        m.advance_time(1.0);
        assert_eq!(m.lag_units(), lag_before);
    }

    #[test]
    fn negative_work_is_ignored() {
        let m = CounterProgress::new("job", RateTarget::new(10.0, 1.0));
        m.record_work(-100.0);
        assert_eq!(m.lag_units(), 0.0);
    }

    #[test]
    #[should_panic(expected = "target rate must be positive")]
    fn zero_rate_rejected() {
        let _ = RateTarget::new(0.0, 1.0);
    }

    #[test]
    fn name_and_target_accessors() {
        let m = CounterProgress::new("crack", RateTarget::new(5.0, 2.0));
        assert_eq!(m.name(), "crack");
        assert_eq!(m.target().units_per_second, 5.0);
    }

    proptest! {
        #[test]
        fn centered_pressure_is_bounded(
            rate in 0.1f64..100.0,
            window in 0.1f64..10.0,
            elapsed in 0.0f64..100.0,
            work in 0.0f64..10_000.0,
        ) {
            let m = CounterProgress::new("j", RateTarget::new(rate, window));
            m.advance_time(elapsed);
            m.record_work(work);
            let c = m.sample().centered();
            prop_assert!((-0.5..=0.5).contains(&c));
        }

        #[test]
        fn more_work_never_increases_pressure(
            rate in 1.0f64..50.0,
            elapsed in 0.1f64..10.0,
            work_a in 0.0f64..500.0,
            extra in 0.0f64..500.0,
        ) {
            let a = CounterProgress::new("a", RateTarget::new(rate, 1.0));
            a.advance_time(elapsed);
            a.record_work(work_a);
            let b = CounterProgress::new("b", RateTarget::new(rate, 1.0));
            b.advance_time(elapsed);
            b.record_work(work_a + extra);
            prop_assert!(b.sample().centered() <= a.sample().centered() + 1e-3);
        }
    }
}
