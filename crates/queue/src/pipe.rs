//! A byte-oriented bounded channel modelling a Unix pipe or socket buffer.
//!
//! The paper extends "the in-kernel pipe and socket implementation" to
//! expose fill levels (§3.2).  `Pipe` is the equivalent abstraction here:
//! a byte FIFO of fixed capacity whose occupancy is observable through
//! [`ProgressMetric`].

use crate::metric::{FillSample, ProgressMetric};
use parking_lot::Mutex;
use std::collections::VecDeque;

struct PipeInner {
    bytes: VecDeque<u8>,
    total_written: u64,
    total_read: u64,
}

/// A bounded byte FIFO with partial writes and reads, like `pipe(2)`.
///
/// # Examples
///
/// ```
/// use rrs_queue::{Pipe, ProgressMetric};
///
/// let pipe = Pipe::new("stdout", 8);
/// assert_eq!(pipe.write(&[1, 2, 3, 4]), 4);
/// assert_eq!(pipe.sample().fraction(), 0.5);
/// let mut buf = [0u8; 2];
/// assert_eq!(pipe.read(&mut buf), 2);
/// assert_eq!(buf, [1, 2]);
/// ```
pub struct Pipe {
    name: String,
    capacity: usize,
    inner: Mutex<PipeInner>,
}

impl Pipe {
    /// Creates a pipe with the given name and capacity in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(name: impl Into<String>, capacity: usize) -> Self {
        assert!(capacity > 0, "pipe capacity must be non-zero");
        Self {
            name: name.into(),
            capacity,
            inner: Mutex::new(PipeInner {
                bytes: VecDeque::with_capacity(capacity),
                total_written: 0,
                total_read: 0,
            }),
        }
    }

    /// Returns the pipe capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Returns the number of buffered bytes.
    pub fn len(&self) -> usize {
        self.inner.lock().bytes.len()
    }

    /// Returns `true` if no bytes are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns `true` if the pipe is at capacity.
    pub fn is_full(&self) -> bool {
        self.len() >= self.capacity
    }

    /// Writes as many bytes of `data` as fit and returns how many were
    /// accepted (a short write when the pipe is nearly full, 0 when full).
    pub fn write(&self, data: &[u8]) -> usize {
        let mut inner = self.inner.lock();
        let space = self.capacity - inner.bytes.len();
        let n = data.len().min(space);
        inner.bytes.extend(&data[..n]);
        inner.total_written += n as u64;
        n
    }

    /// Reads up to `buf.len()` bytes into `buf` and returns how many were
    /// read (0 when the pipe is empty).
    pub fn read(&self, buf: &mut [u8]) -> usize {
        let mut inner = self.inner.lock();
        let n = buf.len().min(inner.bytes.len());
        for slot in buf.iter_mut().take(n) {
            *slot = inner.bytes.pop_front().expect("length was checked");
        }
        inner.total_read += n as u64;
        n
    }

    /// Discards up to `count` buffered bytes and returns how many were
    /// discarded.  Used by simulated consumers that only track byte counts.
    pub fn consume(&self, count: usize) -> usize {
        let mut inner = self.inner.lock();
        let n = count.min(inner.bytes.len());
        inner.bytes.drain(..n);
        inner.total_read += n as u64;
        n
    }

    /// Total bytes ever written.
    pub fn total_written(&self) -> u64 {
        self.inner.lock().total_written
    }

    /// Total bytes ever read.
    pub fn total_read(&self) -> u64 {
        self.inner.lock().total_read
    }
}

impl ProgressMetric for Pipe {
    fn sample(&self) -> FillSample {
        FillSample::new(self.len(), self.capacity)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

impl std::fmt::Debug for Pipe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipe")
            .field("name", &self.name)
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn write_then_read_round_trips() {
        let pipe = Pipe::new("p", 16);
        assert_eq!(pipe.write(b"hello"), 5);
        let mut buf = [0u8; 5];
        assert_eq!(pipe.read(&mut buf), 5);
        assert_eq!(&buf, b"hello");
        assert!(pipe.is_empty());
    }

    #[test]
    fn short_write_when_nearly_full() {
        let pipe = Pipe::new("p", 4);
        assert_eq!(pipe.write(b"abc"), 3);
        assert_eq!(pipe.write(b"defg"), 1);
        assert!(pipe.is_full());
        assert_eq!(pipe.write(b"x"), 0);
    }

    #[test]
    fn short_read_when_nearly_empty() {
        let pipe = Pipe::new("p", 8);
        pipe.write(b"ab");
        let mut buf = [0u8; 8];
        assert_eq!(pipe.read(&mut buf), 2);
        assert_eq!(&buf[..2], b"ab");
        assert_eq!(pipe.read(&mut buf), 0);
    }

    #[test]
    fn consume_discards_bytes() {
        let pipe = Pipe::new("p", 8);
        pipe.write(b"abcdef");
        assert_eq!(pipe.consume(4), 4);
        assert_eq!(pipe.len(), 2);
        assert_eq!(pipe.consume(10), 2);
        assert!(pipe.is_empty());
    }

    #[test]
    fn totals_track_traffic() {
        let pipe = Pipe::new("p", 8);
        pipe.write(b"abcd");
        pipe.consume(2);
        let mut buf = [0u8; 1];
        pipe.read(&mut buf);
        assert_eq!(pipe.total_written(), 4);
        assert_eq!(pipe.total_read(), 3);
    }

    #[test]
    fn fill_sample_reflects_occupancy() {
        let pipe = Pipe::new("p", 10);
        pipe.write(&[0u8; 5]);
        assert_eq!(pipe.sample().fraction(), 0.5);
        assert_eq!(pipe.sample().centered(), 0.0);
        assert_eq!(pipe.name(), "p");
    }

    #[test]
    #[should_panic(expected = "pipe capacity must be non-zero")]
    fn zero_capacity_rejected() {
        let _ = Pipe::new("p", 0);
    }

    proptest! {
        #[test]
        fn occupancy_never_exceeds_capacity(
            writes in proptest::collection::vec(0usize..20, 1..50),
            cap in 1usize..64,
        ) {
            let pipe = Pipe::new("p", cap);
            for (i, &w) in writes.iter().enumerate() {
                let data = vec![0u8; w];
                pipe.write(&data);
                if i % 3 == 0 {
                    pipe.consume(w / 2);
                }
                prop_assert!(pipe.len() <= cap);
            }
        }

        #[test]
        fn written_equals_read_plus_buffered(
            chunks in proptest::collection::vec(proptest::collection::vec(0u8..255, 0..16), 0..30),
        ) {
            let pipe = Pipe::new("p", 128);
            let mut accepted = 0u64;
            for c in &chunks {
                accepted += pipe.write(c) as u64;
            }
            let mut buf = vec![0u8; 64];
            let mut read = 0u64;
            read += pipe.read(&mut buf) as u64;
            prop_assert_eq!(accepted, read + pipe.len() as u64);
        }
    }
}
