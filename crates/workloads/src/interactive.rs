//! Interactive jobs: servers that listen to ttys (§3.2).
//!
//! "Interactive jobs are servers that listen to ttys instead of sockets.
//! Since interactive jobs have specific requirements (periods relative to
//! human perception), the scheduler only needs to know that the job is
//! interactive and the ttys in which it is interested."  The model here
//! sleeps until a keystroke arrives, then runs a short burst of work; its
//! response time (keystroke to completed burst) is the metric of interest.

use crate::latency::LatencyStats;
use rrs_sim::{RunResult, SimTime, WorkModel};
use std::sync::Arc;

/// An interactive job driven by keystrokes at a fixed typing rate.
#[derive(Debug)]
pub struct InteractiveJob {
    /// Interval between keystrokes, in microseconds.
    keystroke_interval_us: u64,
    /// Cycles of work each keystroke triggers (echo, redraw, etc.).
    cycles_per_keystroke: f64,
    next_keystroke_us: u64,
    cycles_remaining: f64,
    pending_keystroke_arrival_us: Option<u64>,
    handled: u64,
    total_response_us: f64,
    worst_response_us: f64,
    latency: Option<Arc<LatencyStats>>,
}

impl InteractiveJob {
    /// Creates an interactive job with the given typing rate (keystrokes per
    /// second) and work per keystroke in cycles.
    ///
    /// # Panics
    ///
    /// Panics if `keystrokes_per_second` is not positive.
    pub fn new(keystrokes_per_second: f64, cycles_per_keystroke: f64) -> Self {
        assert!(keystrokes_per_second > 0.0, "typing rate must be positive");
        Self {
            keystroke_interval_us: ((1e6 / keystrokes_per_second).round() as u64).max(1),
            cycles_per_keystroke,
            next_keystroke_us: 0,
            cycles_remaining: 0.0,
            pending_keystroke_arrival_us: None,
            handled: 0,
            total_response_us: 0.0,
            worst_response_us: 0.0,
            latency: None,
        }
    }

    /// Records every keystroke's response time into `stats` (shared with
    /// the observer; see [`LatencyStats`]).
    pub fn with_latency_stats(mut self, stats: Arc<LatencyStats>) -> Self {
        self.latency = Some(stats);
        self
    }

    /// A typist at five keystrokes per second with 2 Mcycles of work per
    /// keystroke (echo plus a screen update).
    pub fn typist() -> Self {
        Self::new(5.0, 2.0e6)
    }

    /// Keystrokes fully handled so far.
    pub fn handled(&self) -> u64 {
        self.handled
    }

    /// Mean keystroke-to-completion response time in seconds.
    pub fn mean_response_s(&self) -> f64 {
        if self.handled == 0 {
            0.0
        } else {
            self.total_response_us / self.handled as f64 / 1e6
        }
    }

    /// Worst observed response time in seconds.
    pub fn worst_response_s(&self) -> f64 {
        self.worst_response_us / 1e6
    }
}

impl WorkModel for InteractiveJob {
    fn run(&mut self, now_us: u64, quantum_us: u64, cpu_hz: f64) -> RunResult {
        if self.next_keystroke_us == 0 {
            self.next_keystroke_us = now_us + self.keystroke_interval_us;
        }
        // Accept a keystroke that has arrived.
        if self.pending_keystroke_arrival_us.is_none() && self.next_keystroke_us <= now_us {
            self.pending_keystroke_arrival_us = Some(self.next_keystroke_us);
            self.cycles_remaining = self.cycles_per_keystroke;
            self.next_keystroke_us += self.keystroke_interval_us;
        }
        let Some(arrival) = self.pending_keystroke_arrival_us else {
            // Nothing to do until the next keystroke.
            return RunResult::blocked_after(0);
        };

        let cycles_available = quantum_us as f64 * cpu_hz / 1e6;
        if cycles_available < self.cycles_remaining {
            self.cycles_remaining -= cycles_available;
            return RunResult::ran(quantum_us.max(1));
        }
        let used_us = (self.cycles_remaining / cpu_hz * 1e6).round() as u64;
        self.cycles_remaining = 0.0;
        self.pending_keystroke_arrival_us = None;
        self.handled += 1;
        let response_us = (now_us + used_us).saturating_sub(arrival);
        let response = response_us as f64;
        self.total_response_us += response;
        self.worst_response_us = self.worst_response_us.max(response);
        if let Some(stats) = &self.latency {
            stats.record_us(response_us);
        }
        // Burst finished: block until the next keystroke.
        RunResult::blocked_after(used_us.min(quantum_us).max(1))
    }

    fn poll_unblock(&mut self, now_us: u64) -> bool {
        self.pending_keystroke_arrival_us.is_some()
            || self.next_keystroke_us == 0
            || now_us + 1 >= self.next_keystroke_us
    }

    fn next_transition(&self, now: SimTime) -> Option<SimTime> {
        // Blocked only between keystrokes; the arrival clock is known.
        if self.pending_keystroke_arrival_us.is_some() || self.next_keystroke_us == 0 {
            return Some(now);
        }
        Some(SimTime::from_micros(
            self.next_keystroke_us.saturating_sub(1),
        ))
    }

    fn progress_counter(&self) -> Option<f64> {
        Some(self.handled as f64)
    }

    fn label(&self) -> &str {
        "interactive"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hog::CpuHog;
    use rrs_core::JobSpec;
    use rrs_sim::{SimConfig, Simulation};

    #[test]
    fn typist_keystrokes_are_handled() {
        let mut sim = Simulation::new(SimConfig::default());
        sim.add_job(
            "editor",
            JobSpec::miscellaneous(),
            Box::new(InteractiveJob::typist()),
        )
        .unwrap();
        sim.run_for(10.0);
        let handled = sim
            .trace()
            .get("rate/editor")
            .unwrap()
            .window_mean(5.0, 10.0)
            .unwrap();
        assert!(
            handled > 3.0,
            "should handle close to 5 keystrokes/s, got {handled}"
        );
    }

    #[test]
    fn interactive_job_stays_responsive_next_to_a_hog() {
        let mut sim = Simulation::new(SimConfig::default());
        let _hog = sim
            .add_job("hog", JobSpec::miscellaneous(), Box::new(CpuHog::new()))
            .unwrap();
        let editor = InteractiveJob::typist();
        sim.add_job("editor", JobSpec::miscellaneous(), Box::new(editor))
            .unwrap();
        sim.run_for(10.0);
        // The editor keeps making progress even though the hog wants
        // everything: no starvation.
        let handled = sim
            .trace()
            .get("rate/editor")
            .unwrap()
            .window_mean(5.0, 10.0)
            .unwrap();
        assert!(
            handled > 2.0,
            "editor starved next to hog: {handled} keystrokes/s"
        );
    }

    #[test]
    fn response_accounting() {
        let mut job = InteractiveJob::new(10.0, 1000.0);
        assert_eq!(job.mean_response_s(), 0.0);
        // Drive it by hand: first run arms the keystroke clock.
        job.run(0, 100, 400e6);
        // Jump past the first keystroke and give it plenty of quantum.
        job.run(200_000, 1000, 400e6);
        assert_eq!(job.handled(), 1);
        assert!(job.mean_response_s() >= 0.0);
        assert!(job.worst_response_s() >= job.mean_response_s());
    }

    #[test]
    fn latency_stats_capture_every_response() {
        let stats = LatencyStats::new();
        let mut job = InteractiveJob::new(10.0, 1000.0).with_latency_stats(Arc::clone(&stats));
        job.run(0, 100, 400e6);
        job.run(200_000, 1000, 400e6);
        assert_eq!(job.handled(), 1);
        assert_eq!(stats.count(), 1);
        assert!(
            (stats.percentile_us(100.0) - job.worst_response_s() * 1e6).abs()
                <= LatencyStats::BUCKET_WIDTH_US,
            "histogram and scalar accounting agree"
        );
    }

    #[test]
    #[should_panic(expected = "typing rate must be positive")]
    fn zero_typing_rate_rejected() {
        let _ = InteractiveJob::new(0.0, 1000.0);
    }
}
