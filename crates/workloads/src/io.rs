//! I/O-intensive jobs (§3.2).
//!
//! "Applications that process large data sets can be considered consumers of
//! data that is produced by the I/O subsystem.  As such, they need to be
//! given sufficient CPU to keep the disks busy."  The disk is modelled as a
//! producer with fixed bandwidth that costs no CPU; the reader is a
//! real-rate consumer whose allocation must be just enough to keep up.
//! Because the disk (not the CPU) is the bottleneck, this workload also
//! exercises the controller's reclamation path (Figure 4's "−C" branch).

use rrs_api::Host;
use rrs_core::{JobHandle, JobSpec};
use rrs_queue::{BoundedBuffer, JobKey, Role};
use rrs_scheduler::{Period, Proportion};
use rrs_sim::{RunResult, SimTime, WorkModel};
use std::sync::Arc;

/// One disk block delivered by the simulated I/O subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoBlock {
    /// Payload size in bytes.
    pub bytes: usize,
}

/// The simulated disk: delivers blocks at a fixed bandwidth without
/// consuming CPU (DMA).
#[derive(Debug)]
pub struct Disk {
    queue: Arc<BoundedBuffer<IoBlock>>,
    block_bytes: usize,
    block_interval_us: u64,
    next_block_us: u64,
    delivered: u64,
}

impl Disk {
    /// Creates a disk delivering `bandwidth_bytes_per_sec` in blocks of
    /// `block_bytes`.
    ///
    /// # Panics
    ///
    /// Panics unless both arguments are positive.
    pub fn new(
        queue: Arc<BoundedBuffer<IoBlock>>,
        bandwidth_bytes_per_sec: f64,
        block_bytes: usize,
    ) -> Self {
        assert!(bandwidth_bytes_per_sec > 0.0, "bandwidth must be positive");
        assert!(block_bytes > 0, "block size must be positive");
        let blocks_per_sec = bandwidth_bytes_per_sec / block_bytes as f64;
        Self {
            queue,
            block_bytes,
            block_interval_us: ((1e6 / blocks_per_sec).round() as u64).max(1),
            next_block_us: 0,
            delivered: 0,
        }
    }

    /// Blocks delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }
}

impl WorkModel for Disk {
    fn run(&mut self, now_us: u64, _quantum_us: u64, _cpu_hz: f64) -> RunResult {
        if self.next_block_us == 0 {
            self.next_block_us = now_us + self.block_interval_us;
        }
        while self.next_block_us <= now_us {
            if self
                .queue
                .try_push(IoBlock {
                    bytes: self.block_bytes,
                })
                .is_ok()
            {
                self.delivered += 1;
            }
            self.next_block_us += self.block_interval_us;
        }
        RunResult::blocked_after(1)
    }

    fn poll_unblock(&mut self, now_us: u64) -> bool {
        now_us + 1 >= self.next_block_us
    }

    fn next_transition(&self, now: SimTime) -> Option<SimTime> {
        // The device clock ticks on a fixed interval, so the next block
        // arrival is always known.
        if self.next_block_us == 0 {
            return Some(now);
        }
        Some(SimTime::from_micros(self.next_block_us.saturating_sub(1)))
    }

    fn label(&self) -> &str {
        "disk"
    }
}

/// The reader: consumes disk blocks, spending a configurable number of
/// cycles per byte (checksumming, parsing, filtering...).
#[derive(Debug)]
pub struct DiskReader {
    queue: Arc<BoundedBuffer<IoBlock>>,
    cycles_per_byte: f64,
    cycles_remaining: f64,
    bytes_processed: f64,
}

impl DiskReader {
    /// Creates a reader over `queue` spending `cycles_per_byte` per byte.
    pub fn new(queue: Arc<BoundedBuffer<IoBlock>>, cycles_per_byte: f64) -> Self {
        Self {
            queue,
            cycles_per_byte,
            cycles_remaining: 0.0,
            bytes_processed: 0.0,
        }
    }

    /// Bytes processed so far.
    pub fn bytes_processed(&self) -> f64 {
        self.bytes_processed
    }

    /// Installs a disk/reader pair into any [`Host`]: the disk gets a
    /// tiny real-time reservation (interrupt handling), the reader is a
    /// real-rate job.  Returns `(disk, reader)` handles.
    pub fn install(
        host: &mut (impl Host + ?Sized),
        bandwidth_bytes_per_sec: f64,
        block_bytes: usize,
        cycles_per_byte: f64,
        queue_capacity: usize,
    ) -> (JobHandle, JobHandle) {
        let queue = Arc::new(BoundedBuffer::new("disk-buffer", queue_capacity));
        let disk = Disk::new(Arc::clone(&queue), bandwidth_bytes_per_sec, block_bytes);
        let reader = DiskReader::new(Arc::clone(&queue), cycles_per_byte);
        let disk_handle = host
            .add_job(
                "disk",
                JobSpec::real_time(Proportion::from_ppt(5), Period::from_millis(5)),
                Box::new(disk),
            )
            .expect("tiny disk reservation always fits");
        let reader_handle = host
            .add_job("reader", JobSpec::real_rate(), Box::new(reader))
            .expect("real-rate always admitted");
        let registry = host.registry();
        registry.register(JobKey(disk_handle.job.0), Role::Producer, queue.clone());
        registry.register(JobKey(reader_handle.job.0), Role::Consumer, queue);
        (disk_handle, reader_handle)
    }
}

impl WorkModel for DiskReader {
    fn run(&mut self, _now_us: u64, quantum_us: u64, cpu_hz: f64) -> RunResult {
        let mut cycles_available = quantum_us as f64 * cpu_hz / 1e6;
        let mut cycles_used = 0.0;
        loop {
            if self.cycles_remaining <= 0.0 {
                match self.queue.try_pop() {
                    Some(block) => {
                        self.cycles_remaining = block.bytes as f64 * self.cycles_per_byte;
                        self.bytes_processed += block.bytes as f64;
                    }
                    None => {
                        let used_us = (cycles_used / cpu_hz * 1e6).round() as u64;
                        return RunResult::blocked_after(used_us.min(quantum_us));
                    }
                }
            }
            if cycles_available < self.cycles_remaining {
                self.cycles_remaining -= cycles_available;
                cycles_used += cycles_available;
                break;
            }
            cycles_available -= self.cycles_remaining;
            cycles_used += self.cycles_remaining;
            self.cycles_remaining = 0.0;
        }
        let used_us = (cycles_used / cpu_hz * 1e6).round() as u64;
        RunResult::ran(used_us.min(quantum_us).max(1))
    }

    fn poll_unblock(&mut self, _now_us: u64) -> bool {
        !self.queue.is_empty()
    }

    fn progress_counter(&self) -> Option<f64> {
        Some(self.bytes_processed)
    }

    fn label(&self) -> &str {
        "disk-reader"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrs_sim::{SimConfig, Simulation};

    #[test]
    fn disk_delivers_at_configured_bandwidth() {
        let queue = Arc::new(BoundedBuffer::new("q", 4096));
        // 1 MB/s in 4 KiB blocks ≈ 244 blocks/s.
        let mut disk = Disk::new(Arc::clone(&queue), 1.0e6, 4096);
        let mut now = 0u64;
        while now < 1_000_000 {
            disk.run(now, 10, 400e6);
            now += 1_000;
        }
        let delivered = disk.delivered();
        assert!(
            (230..=260).contains(&delivered),
            "delivered {delivered} blocks in 1 s"
        );
    }

    #[test]
    fn reader_keeps_up_with_the_disk() {
        let mut sim = Simulation::new(SimConfig::default());
        // 1 MB/s, 40 cycles/byte → 40 Mcycles/s → 10 % of a 400 MHz CPU.
        let (_disk, reader) = DiskReader::install(&mut sim, 1.0e6, 4096, 40.0, 32);
        sim.run_for(10.0);
        let throughput = sim
            .trace()
            .get("rate/reader")
            .unwrap()
            .window_mean(5.0, 10.0)
            .unwrap();
        assert!(
            throughput > 0.8e6,
            "reader should process ≈1 MB/s, got {throughput}"
        );
        let alloc = sim.current_allocation_ppt(reader);
        assert!(
            (50..=400).contains(&alloc),
            "reader allocation {alloc} should be near 100 ‰"
        );
    }

    #[test]
    fn reader_allocation_is_bounded_by_the_disk_bottleneck() {
        let mut sim = Simulation::new(SimConfig::default());
        // A very slow disk: 100 KB/s.  Even with the whole CPU available the
        // reader cannot go faster, so the controller must not hand it the
        // whole machine.
        let (_disk, reader) = DiskReader::install(&mut sim, 100e3, 4096, 40.0, 32);
        sim.run_for(15.0);
        let alloc = sim.current_allocation_ppt(reader);
        assert!(
            alloc < 500,
            "reader allocation {alloc} should stay modest when the disk is the bottleneck"
        );
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let queue = Arc::new(BoundedBuffer::new("q", 4));
        let _ = Disk::new(queue, 0.0, 4096);
    }
}
