//! Shared per-request latency histograms.
//!
//! Request-serving workloads (the web server, interactive jobs) measure a
//! latency per unit of work: queueing-plus-service time per request,
//! keystroke-to-completion time per keystroke.  [`LatencyStats`] is the
//! `Arc`-shared sink those models record into — the model moves into the
//! host when installed, so the observer's half must be a shared handle,
//! the same split [`crate::ModemStats`] uses for the modem's counters.
//!
//! Recording is opt-in: models carry an `Option<Arc<LatencyStats>>` that
//! defaults to `None`, so uninstrumented installs pay nothing per
//! request.  The histogram itself reuses [`rrs_metrics::Histogram`];
//! percentile queries are bucket-midpoint approximations at
//! [`LatencyStats::BUCKET_WIDTH_US`] resolution.

use rrs_metrics::Histogram;
use serde::{Deserialize, Serialize};
use std::sync::{Arc, Mutex};

/// Upper edge of the latency histogram range, in microseconds.  Samples
/// at or above it are clamped into the last bucket (never dropped).
pub const LATENCY_RANGE_US: f64 = 1_000_000.0;

/// Number of uniform buckets over `[0, LATENCY_RANGE_US)`.
pub const LATENCY_BUCKETS: usize = 4000;

/// An `Arc`-shared latency histogram a workload records into.
#[derive(Debug)]
pub struct LatencyStats {
    hist: Mutex<Histogram>,
}

impl LatencyStats {
    /// Resolution of one bucket, in microseconds.
    pub const BUCKET_WIDTH_US: f64 = LATENCY_RANGE_US / LATENCY_BUCKETS as f64;

    /// A fresh, shareable histogram over `[0, 1 s)` at 250 µs resolution.
    pub fn new() -> Arc<Self> {
        Arc::new(Self {
            hist: Mutex::new(Histogram::new(0.0, LATENCY_RANGE_US, LATENCY_BUCKETS)),
        })
    }

    /// Records one latency sample, in microseconds.
    pub fn record_us(&self, us: u64) {
        self.hist
            .lock()
            .expect("latency lock poisoned")
            .record(us as f64);
    }

    /// Number of samples recorded so far.
    pub fn count(&self) -> u64 {
        self.hist.lock().expect("latency lock poisoned").count()
    }

    /// The `p`-th percentile (0–100) of the recorded latencies, in
    /// microseconds.  Returns 0 when nothing was recorded.
    pub fn percentile_us(&self, p: f64) -> f64 {
        self.hist
            .lock()
            .expect("latency lock poisoned")
            .percentile(p)
    }

    /// A serialisable summary of the distribution, labelled `source`.
    pub fn summary(&self, source: &str) -> LatencySummary {
        let hist = self.hist.lock().expect("latency lock poisoned");
        let pct = |p: f64| {
            if hist.count() == 0 {
                0.0
            } else {
                hist.percentile(p) / 1e3
            }
        };
        LatencySummary {
            source: source.to_string(),
            count: hist.count(),
            p50_ms: pct(50.0),
            p99_ms: pct(99.0),
            p999_ms: pct(99.9),
        }
    }
}

/// A point-in-time percentile summary of one [`LatencyStats`], as it
/// appears in scenario reports.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Which workload the samples came from (the member or job name).
    pub source: String,
    /// Number of samples.
    #[serde(default)]
    pub count: u64,
    /// Median latency in milliseconds.
    #[serde(default)]
    pub p50_ms: f64,
    /// 99th-percentile latency in milliseconds.
    #[serde(default)]
    pub p99_ms: f64,
    /// 99.9th-percentile latency in milliseconds.
    #[serde(default)]
    pub p999_ms: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_summarises() {
        let stats = LatencyStats::new();
        assert_eq!(stats.count(), 0);
        assert_eq!(stats.percentile_us(99.0), 0.0);
        let empty = stats.summary("s");
        assert_eq!(empty.count, 0);
        assert_eq!(empty.p99_ms, 0.0);

        for us in [1_000u64, 2_000, 3_000, 100_000] {
            stats.record_us(us);
        }
        assert_eq!(stats.count(), 4);
        let p50 = stats.percentile_us(50.0);
        let p99 = stats.percentile_us(99.0);
        assert!(p50 < p99, "p50 {p50} < p99 {p99}");
        assert!((p99 - 100_000.0).abs() < LatencyStats::BUCKET_WIDTH_US);

        let summary = stats.summary("server");
        assert_eq!(summary.source, "server");
        assert_eq!(summary.count, 4);
        assert!(summary.p50_ms <= summary.p99_ms && summary.p99_ms <= summary.p999_ms);
    }

    #[test]
    fn summary_round_trips_through_json() {
        let stats = LatencyStats::new();
        stats.record_us(5_000);
        let summary = stats.summary("typist");
        let json = serde_json::to_string(&summary).unwrap();
        let back: LatencySummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, summary);
    }

    #[test]
    fn oversized_samples_clamp_into_the_top_bucket() {
        let stats = LatencyStats::new();
        stats.record_us(10_000_000); // 10 s, far past the 1 s range
        assert_eq!(stats.count(), 1);
        assert!(stats.percentile_us(100.0) >= LATENCY_RANGE_US - LatencyStats::BUCKET_WIDTH_US);
    }
}
