//! A multi-stage multimedia pipeline (§4.4).
//!
//! "We have a multimedia pipeline of processes that communicate with a
//! shared queue.  Our controller automatically identifies that one stage of
//! the pipeline has vastly different CPU requirements than the others (the
//! video decoder), even though all the processes have the same priority."
//!
//! The pipeline here is source → decoder → renderer: the source emits
//! frames at a fixed rate (it holds a small reservation, like a capture
//! device), the decoder burns many cycles per frame, and the renderer burns
//! few.  Both decoder and renderer are real-rate jobs whose allocations the
//! controller must discover.

use rrs_api::Host;
use rrs_core::{JobHandle, JobSpec};
use rrs_queue::{BoundedBuffer, JobKey, Role};
use rrs_scheduler::{Period, Proportion};
use rrs_sim::{RunResult, WorkModel};
use std::sync::Arc;

/// A video frame moving through the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame {
    /// Frame sequence number.
    pub seq: u64,
}

/// Configuration of the video pipeline.
#[derive(Debug, Clone, Copy)]
pub struct VideoPipelineConfig {
    /// Source frame rate in frames per second.
    pub fps: f64,
    /// Cycles the decoder spends per frame.
    pub decode_cycles_per_frame: f64,
    /// Cycles the renderer spends per frame.
    pub render_cycles_per_frame: f64,
    /// Capacity of the queues between stages, in frames.
    pub queue_capacity: usize,
}

impl Default for VideoPipelineConfig {
    fn default() -> Self {
        // 30 fps; decoding costs 4 Mcycles/frame (30 % of a 400 MHz CPU),
        // rendering 0.4 Mcycles/frame (3 %): a 10× asymmetry like the one
        // the paper describes.
        Self {
            fps: 30.0,
            decode_cycles_per_frame: 4.0e6,
            render_cycles_per_frame: 0.4e6,
            queue_capacity: 16,
        }
    }
}

/// Handles to the three pipeline stages.
#[derive(Debug, Clone)]
pub struct VideoPipelineHandles {
    /// The frame source (real-time reservation).
    pub source: JobHandle,
    /// The decoder stage (real-rate).
    pub decoder: JobHandle,
    /// The renderer stage (real-rate).
    pub renderer: JobHandle,
    /// Queue from source to decoder.
    pub capture_queue: Arc<BoundedBuffer<Frame>>,
    /// Queue from decoder to renderer.
    pub render_queue: Arc<BoundedBuffer<Frame>>,
}

/// Builder for the video pipeline.
#[derive(Debug, Clone, Copy, Default)]
pub struct VideoPipeline;

impl VideoPipeline {
    /// Installs the three-stage pipeline into any [`Host`].
    pub fn install(
        host: &mut (impl Host + ?Sized),
        config: VideoPipelineConfig,
    ) -> VideoPipelineHandles {
        let capture_queue = Arc::new(BoundedBuffer::new("capture", config.queue_capacity));
        let render_queue = Arc::new(BoundedBuffer::new("render", config.queue_capacity));

        let source = FrameSource {
            queue: Arc::clone(&capture_queue),
            fps: config.fps,
            next_frame_us: 0,
            seq: 0,
        };
        let decoder = PipelineStage {
            input: Arc::clone(&capture_queue),
            output: Some(Arc::clone(&render_queue)),
            cycles_per_frame: config.decode_cycles_per_frame,
            cycles_remaining: 0.0,
            current: None,
            processed: 0,
        };
        let renderer = PipelineStage {
            input: Arc::clone(&render_queue),
            output: None,
            cycles_per_frame: config.render_cycles_per_frame,
            cycles_remaining: 0.0,
            current: None,
            processed: 0,
        };

        let source_handle = host
            .add_job(
                "source",
                JobSpec::real_time(Proportion::from_ppt(10), Period::from_millis(5)),
                Box::new(source),
            )
            .expect("tiny source reservation always fits");
        let decoder_handle = host
            .add_job("decoder", JobSpec::real_rate(), Box::new(decoder))
            .expect("real-rate always admitted");
        let renderer_handle = host
            .add_job("renderer", JobSpec::real_rate(), Box::new(renderer))
            .expect("real-rate always admitted");

        let registry = host.registry();
        registry.register(
            JobKey(source_handle.job.0),
            Role::Producer,
            capture_queue.clone(),
        );
        registry.register(
            JobKey(decoder_handle.job.0),
            Role::Consumer,
            capture_queue.clone(),
        );
        registry.register(
            JobKey(decoder_handle.job.0),
            Role::Producer,
            render_queue.clone(),
        );
        registry.register(
            JobKey(renderer_handle.job.0),
            Role::Consumer,
            render_queue.clone(),
        );

        VideoPipelineHandles {
            source: source_handle,
            decoder: decoder_handle,
            renderer: renderer_handle,
            capture_queue,
            render_queue,
        }
    }
}

/// Emits frames at a fixed rate using negligible CPU (a capture device).
#[derive(Debug)]
struct FrameSource {
    queue: Arc<BoundedBuffer<Frame>>,
    fps: f64,
    next_frame_us: u64,
    seq: u64,
}

impl FrameSource {
    fn frame_interval_us(&self) -> u64 {
        ((1e6 / self.fps).round() as u64).max(1)
    }
}

impl WorkModel for FrameSource {
    fn run(&mut self, now_us: u64, _quantum_us: u64, _cpu_hz: f64) -> RunResult {
        if self.next_frame_us == 0 {
            self.next_frame_us = now_us + self.frame_interval_us();
        }
        while self.next_frame_us <= now_us {
            if self.queue.try_push(Frame { seq: self.seq }).is_ok() {
                self.seq += 1;
            }
            self.next_frame_us += self.frame_interval_us();
        }
        RunResult::blocked_after(1)
    }

    fn poll_unblock(&mut self, now_us: u64) -> bool {
        now_us + 1 >= self.next_frame_us
    }

    fn progress_counter(&self) -> Option<f64> {
        Some(self.seq as f64)
    }

    fn label(&self) -> &str {
        "frame-source"
    }
}

/// A pipeline stage: pops a frame from `input`, burns cycles, optionally
/// forwards it to `output`.
#[derive(Debug)]
struct PipelineStage {
    input: Arc<BoundedBuffer<Frame>>,
    output: Option<Arc<BoundedBuffer<Frame>>>,
    cycles_per_frame: f64,
    cycles_remaining: f64,
    current: Option<Frame>,
    processed: u64,
}

impl WorkModel for PipelineStage {
    fn run(&mut self, _now_us: u64, quantum_us: u64, cpu_hz: f64) -> RunResult {
        let mut cycles_available = quantum_us as f64 * cpu_hz / 1e6;
        let mut cycles_used = 0.0;
        loop {
            if self.current.is_none() {
                match self.input.try_pop() {
                    Some(frame) => {
                        self.current = Some(frame);
                        self.cycles_remaining = self.cycles_per_frame;
                    }
                    None => {
                        let used_us = (cycles_used / cpu_hz * 1e6).round() as u64;
                        return RunResult::blocked_after(used_us.min(quantum_us));
                    }
                }
            }
            if cycles_available < self.cycles_remaining {
                self.cycles_remaining -= cycles_available;
                cycles_used += cycles_available;
                break;
            }
            cycles_available -= self.cycles_remaining;
            cycles_used += self.cycles_remaining;
            self.cycles_remaining = 0.0;
            let frame = self.current.take().expect("frame in flight");
            self.processed += 1;
            if let Some(out) = &self.output {
                // A full downstream queue drops the frame rather than
                // blocking, like a renderer skipping late frames.
                let _ = out.try_push(frame);
            }
        }
        let used_us = (cycles_used / cpu_hz * 1e6).round() as u64;
        RunResult::ran(used_us.min(quantum_us).max(1))
    }

    fn poll_unblock(&mut self, _now_us: u64) -> bool {
        !self.input.is_empty()
    }

    fn progress_counter(&self) -> Option<f64> {
        Some(self.processed as f64)
    }

    fn label(&self) -> &str {
        "pipeline-stage"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrs_sim::{SimConfig, Simulation};

    #[test]
    fn controller_discovers_decoder_needs_far_more_than_renderer() {
        let mut sim = Simulation::new(SimConfig::default());
        let handles = VideoPipeline::install(&mut sim, VideoPipelineConfig::default());
        sim.run_for(20.0);
        let decoder = sim.current_allocation_ppt(handles.decoder);
        let renderer = sim.current_allocation_ppt(handles.renderer);
        // Decoding needs ~300 ‰, rendering ~30 ‰: the controller should
        // discover an asymmetry of several times without being told.
        assert!(
            decoder as f64 > renderer as f64 * 3.0,
            "decoder {decoder} should dwarf renderer {renderer}"
        );
    }

    #[test]
    fn pipeline_sustains_the_frame_rate() {
        let mut sim = Simulation::new(SimConfig::default());
        let _handles = VideoPipeline::install(&mut sim, VideoPipelineConfig::default());
        sim.run_for(20.0);
        let rendered = sim
            .trace()
            .get("rate/renderer")
            .unwrap()
            .window_mean(10.0, 20.0)
            .unwrap();
        assert!(
            rendered > 20.0,
            "renderer should sustain close to 30 fps, got {rendered}"
        );
    }

    #[test]
    fn source_emits_frames_at_fixed_rate() {
        let queue = Arc::new(BoundedBuffer::new("q", 256));
        let mut source = FrameSource {
            queue: Arc::clone(&queue),
            fps: 30.0,
            next_frame_us: 0,
            seq: 0,
        };
        let mut now = 0u64;
        while now < 2_000_000 {
            source.run(now, 100, 400e6);
            now += 5_000;
        }
        let emitted = source.seq;
        assert!(
            (55..=65).contains(&emitted),
            "emitted {emitted} frames in 2 s"
        );
    }
}
