//! Web-server workload: requests arrive from the network into a bounded
//! queue and a server thread consumes them.
//!
//! §3.2: "Servers are essentially the consumer of a bounded buffer, where
//! the producer may or may not be on the same machine."  The request
//! arrival process therefore consumes (almost) no local CPU; only the
//! server thread is CPU-bound, and the controller must discover how much
//! CPU it needs to keep up with the offered load.

use crate::latency::LatencyStats;
use rrs_api::Host;
use rrs_core::{JobHandle, JobSpec};
use rrs_queue::{BoundedBuffer, JobKey, Role};
use rrs_scheduler::{Period, Proportion};
use rrs_sim::{RunResult, WorkModel};
use std::sync::Arc;

/// One queued request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// CPU cycles needed to serve the request.
    pub cycles: f64,
    /// Arrival time in microseconds of simulated time.
    pub arrival_us: u64,
}

/// Configuration of the web-server workload.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Request queue capacity (the listen backlog).
    pub queue_capacity: usize,
    /// Offered load in requests per second.
    pub arrival_rate_hz: f64,
    /// Cycles of CPU work each request costs the server.
    pub cycles_per_request: f64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        // 100 req/s at 1 Mcycle each = 100 Mcycles/s = 25 % of a 400 MHz CPU.
        Self {
            queue_capacity: 64,
            arrival_rate_hz: 100.0,
            cycles_per_request: 1e6,
        }
    }
}

/// Generates request arrivals at a fixed rate, using negligible CPU.
///
/// The generator holds a small real-time reservation so the dispatcher runs
/// it regularly; it enqueues however many requests have "arrived" since it
/// last ran and immediately blocks until the next arrival is due.
#[derive(Debug)]
pub struct RequestGenerator {
    queue: Arc<BoundedBuffer<Request>>,
    arrival_rate_hz: f64,
    cycles_per_request: f64,
    next_arrival_us: u64,
    generated: u64,
    dropped: u64,
}

impl RequestGenerator {
    /// Creates a generator feeding `queue`.
    pub fn new(queue: Arc<BoundedBuffer<Request>>, config: ServerConfig) -> Self {
        Self {
            queue,
            arrival_rate_hz: config.arrival_rate_hz,
            cycles_per_request: config.cycles_per_request,
            next_arrival_us: 0,
            generated: 0,
            dropped: 0,
        }
    }

    /// Requests generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Requests dropped because the backlog was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    fn interarrival_us(&self) -> u64 {
        ((1e6 / self.arrival_rate_hz).round() as u64).max(1)
    }
}

impl WorkModel for RequestGenerator {
    fn run(&mut self, now_us: u64, _quantum_us: u64, _cpu_hz: f64) -> RunResult {
        if self.next_arrival_us == 0 {
            self.next_arrival_us = now_us + self.interarrival_us();
        }
        while self.next_arrival_us <= now_us {
            let request = Request {
                cycles: self.cycles_per_request,
                arrival_us: self.next_arrival_us,
            };
            if self.queue.try_push(request).is_ok() {
                self.generated += 1;
            } else {
                self.dropped += 1;
            }
            self.next_arrival_us += self.interarrival_us();
        }
        // Arrivals are free (the network card does the work); block until
        // the next one is due.
        RunResult::blocked_after(1)
    }

    fn poll_unblock(&mut self, now_us: u64) -> bool {
        now_us + 1 >= self.next_arrival_us
    }

    fn label(&self) -> &str {
        "request-generator"
    }
}

/// The server thread: pops requests and burns the cycles they cost.
#[derive(Debug)]
pub struct WebServer {
    queue: Arc<BoundedBuffer<Request>>,
    cycles_remaining: f64,
    served: u64,
    total_latency_us: f64,
    current_arrival_us: u64,
    latency: Option<Arc<LatencyStats>>,
}

impl WebServer {
    /// Creates a server consuming from `queue`.
    pub fn new(queue: Arc<BoundedBuffer<Request>>) -> Self {
        Self {
            queue,
            cycles_remaining: 0.0,
            served: 0,
            total_latency_us: 0.0,
            current_arrival_us: 0,
            latency: None,
        }
    }

    /// Records every served request's latency into `stats` (shared with
    /// the observer; see [`LatencyStats`]).  Without this the server
    /// keeps only its scalar mean.
    pub fn with_latency_stats(mut self, stats: Arc<LatencyStats>) -> Self {
        self.latency = Some(stats);
        self
    }

    /// Requests fully served so far.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Mean queueing + service latency of served requests, in seconds.
    pub fn mean_latency_s(&self) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            self.total_latency_us / self.served as f64 / 1e6
        }
    }

    /// Installs a generator/server pair into any [`Host`]: the generator
    /// runs under a tiny real-time reservation, the server is a real-rate
    /// job whose allocation the controller manages.
    pub fn install(
        host: &mut (impl Host + ?Sized),
        config: ServerConfig,
    ) -> (JobHandle, JobHandle) {
        Self::install_inner(host, config, None)
    }

    /// Like [`WebServer::install`], but also returns a shared
    /// [`LatencyStats`] the server records every request's
    /// queueing-plus-service latency into.
    pub fn install_instrumented(
        host: &mut (impl Host + ?Sized),
        config: ServerConfig,
    ) -> (JobHandle, JobHandle, Arc<LatencyStats>) {
        let stats = LatencyStats::new();
        let (generator, server) = Self::install_inner(host, config, Some(Arc::clone(&stats)));
        (generator, server, stats)
    }

    fn install_inner(
        host: &mut (impl Host + ?Sized),
        config: ServerConfig,
        latency: Option<Arc<LatencyStats>>,
    ) -> (JobHandle, JobHandle) {
        let queue = Arc::new(BoundedBuffer::new("server-backlog", config.queue_capacity));
        let generator = RequestGenerator::new(Arc::clone(&queue), config);
        let mut server = WebServer::new(Arc::clone(&queue));
        server.latency = latency;
        let generator_handle = host
            .add_job(
                "network",
                JobSpec::real_time(Proportion::from_ppt(10), Period::from_millis(5)),
                Box::new(generator),
            )
            .expect("tiny reservation always admitted on empty system");
        let server_handle = host
            .add_job("server", JobSpec::real_rate(), Box::new(server))
            .expect("real-rate jobs are always admitted");
        host.registry()
            .register(JobKey(server_handle.job.0), Role::Consumer, queue);
        (generator_handle, server_handle)
    }
}

impl WorkModel for WebServer {
    fn run(&mut self, now_us: u64, quantum_us: u64, cpu_hz: f64) -> RunResult {
        let mut cycles_available = quantum_us as f64 * cpu_hz / 1e6;
        let mut cycles_used = 0.0;
        loop {
            if self.cycles_remaining <= 0.0 {
                match self.queue.try_pop() {
                    Some(request) => {
                        self.cycles_remaining = request.cycles;
                        self.current_arrival_us = request.arrival_us;
                    }
                    None => {
                        let used_us = (cycles_used / cpu_hz * 1e6).round() as u64;
                        return RunResult::blocked_after(used_us.min(quantum_us));
                    }
                }
            }
            if cycles_available < self.cycles_remaining {
                self.cycles_remaining -= cycles_available;
                cycles_used += cycles_available;
                break;
            }
            cycles_available -= self.cycles_remaining;
            cycles_used += self.cycles_remaining;
            self.cycles_remaining = 0.0;
            self.served += 1;
            let latency_us = now_us.saturating_sub(self.current_arrival_us);
            self.total_latency_us += latency_us as f64;
            if let Some(stats) = &self.latency {
                stats.record_us(latency_us);
            }
        }
        let used_us = (cycles_used / cpu_hz * 1e6).round() as u64;
        RunResult::ran(used_us.min(quantum_us).max(1))
    }

    fn poll_unblock(&mut self, _now_us: u64) -> bool {
        !self.queue.is_empty()
    }

    fn progress_counter(&self) -> Option<f64> {
        Some(self.served as f64)
    }

    fn label(&self) -> &str {
        "web-server"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrs_sim::{SimConfig, Simulation};

    #[test]
    fn generator_produces_requests_at_configured_rate() {
        let queue = Arc::new(BoundedBuffer::new("q", 1024));
        let config = ServerConfig {
            arrival_rate_hz: 50.0,
            ..ServerConfig::default()
        };
        let mut generator = RequestGenerator::new(Arc::clone(&queue), config);
        // Simulate one second of arrivals by repeatedly running the model.
        let mut now = 0u64;
        while now < 1_000_000 {
            generator.run(now, 100, 400e6);
            now += 1_000;
        }
        let made = generator.generated();
        assert!(
            (45..=55).contains(&made),
            "generated {made} requests in 1 s"
        );
        assert_eq!(generator.dropped(), 0);
    }

    #[test]
    fn generator_drops_when_backlog_full() {
        let queue = Arc::new(BoundedBuffer::new("q", 2));
        let config = ServerConfig {
            arrival_rate_hz: 1000.0,
            ..ServerConfig::default()
        };
        let mut generator = RequestGenerator::new(Arc::clone(&queue), config);
        let mut now = 0u64;
        while now < 100_000 {
            generator.run(now, 100, 400e6);
            now += 1_000;
        }
        assert!(generator.dropped() > 0);
        assert_eq!(queue.len(), 2);
    }

    #[test]
    fn server_keeps_up_with_offered_load() {
        let mut sim = Simulation::new(SimConfig::default());
        let config = ServerConfig::default();
        let (_gen, server) = WebServer::install(&mut sim, config);
        sim.run_for(10.0);
        // 100 req/s at 1 Mcycles needs 25 % of the CPU; the controller
        // should find an allocation in that region and the backlog should
        // not stay saturated.
        let alloc = sim.current_allocation_ppt(server);
        assert!(
            (150..=600).contains(&alloc),
            "server allocation {alloc} should be near 250"
        );
        let served_rate = sim
            .trace()
            .get("rate/server")
            .unwrap()
            .window_mean(5.0, 10.0)
            .unwrap();
        assert!(
            served_rate > 80.0,
            "server should serve close to 100 req/s, got {served_rate}"
        );
    }

    #[test]
    fn instrumented_install_shares_a_latency_histogram() {
        let mut sim = Simulation::new(SimConfig::default());
        let (_gen, _server, stats) =
            WebServer::install_instrumented(&mut sim, ServerConfig::default());
        sim.run_for(5.0);
        // ~100 req/s for 5 s: the histogram sees (almost) every request.
        assert!(stats.count() > 300, "only {} samples", stats.count());
        let p50 = stats.percentile_us(50.0);
        let p99 = stats.percentile_us(99.0);
        assert!(p50 > 0.0 && p50 <= p99, "p50 {p50} µs, p99 {p99} µs");
        let summary = stats.summary("server");
        assert_eq!(summary.count, stats.count());
        assert!(summary.p99_ms < 1_000.0, "p99 {} ms", summary.p99_ms);
    }

    #[test]
    fn web_server_latency_accounting() {
        let queue = Arc::new(BoundedBuffer::new("q", 8));
        queue
            .try_push(Request {
                cycles: 1000.0,
                arrival_us: 0,
            })
            .unwrap();
        let mut server = WebServer::new(Arc::clone(&queue));
        assert_eq!(server.mean_latency_s(), 0.0);
        let r = server.run(500, 1_000, 400e6);
        // The single request is served, after which the server blocks on the
        // now-empty queue.
        assert!(r.blocked);
        assert_eq!(server.served(), 1);
        assert!(server.mean_latency_s() > 0.0);
    }
}
