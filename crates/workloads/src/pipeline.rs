//! The pulse-driven producer/consumer pipeline of Figures 6 and 7.
//!
//! "The program is a simple pipeline of a producer and consumer connected by
//! a bounded buffer.  Both the producer and consumer loop for some number of
//! cycles before they enqueue or dequeue a block of data.  We fix the
//! allocation (cycles/sec) given to the producer by specifying a reservation
//! for it, and control the rate at which it produces data (bytes/cycle).
//! For the consumer, we fix the rate of consumption, but let the controller
//! determine the allocation."

use rrs_api::Host;
use rrs_core::{JobHandle, JobSpec};
use rrs_feedback::PulseTrain;
use rrs_queue::{BoundedBuffer, JobKey, Role};
use rrs_scheduler::{Period, Proportion};
use rrs_sim::{RunResult, WorkModel};
use std::sync::Arc;

/// A block of data flowing through the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataBlock {
    /// Payload size in bytes.
    pub bytes: usize,
}

/// Configuration of the pulse pipeline.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Bounded-buffer capacity in blocks.
    pub queue_capacity: usize,
    /// Block size in bytes.
    pub block_bytes: usize,
    /// The producer's fixed reservation (it is a real-time job).
    pub producer_proportion: Proportion,
    /// The producer's period.
    pub producer_period: Period,
    /// The producer's production rate over time, in bytes per cycle.
    pub production_rate: PulseTrain,
    /// The consumer's fixed consumption rate, in bytes per cycle.
    pub consumer_bytes_per_cycle: f64,
    /// Initial fill of the queue, as a fraction of its capacity.
    pub initial_fill: f64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        // On the default 400 MHz CPU a 200 ‰ producer reservation is
        // 80 Mcycles/s; at 2.5e-5 bytes/cycle it produces 2000 bytes/s,
        // doubling to 4000 bytes/s during pulses — the same order as the
        // rates plotted in Figure 6.
        Self {
            queue_capacity: 40,
            block_bytes: 250,
            producer_proportion: Proportion::from_ppt(200),
            producer_period: Period::from_millis(10),
            production_rate: PulseTrain::rising_then_falling(
                2.5e-5,
                5.0e-5,
                4.0,
                &[4.0, 2.0, 1.0],
                2.0,
            ),
            consumer_bytes_per_cycle: 2.5e-5,
            initial_fill: 0.5,
        }
    }
}

impl PipelineConfig {
    /// A configuration with a constant production rate (no pulses), useful
    /// for steady-state tests.
    pub fn steady(bytes_per_cycle: f64) -> Self {
        Self {
            production_rate: PulseTrain::new(bytes_per_cycle, bytes_per_cycle, Vec::new()),
            ..Self::default()
        }
    }
}

/// Handles to the installed pipeline.
#[derive(Debug, Clone)]
pub struct PipelineHandles {
    /// The producer job (fixed reservation).
    pub producer: JobHandle,
    /// The consumer job (real-rate, controller managed).
    pub consumer: JobHandle,
    /// The shared queue between them.
    pub queue: Arc<BoundedBuffer<DataBlock>>,
}

/// Builder that installs the producer/consumer pair into a simulation.
#[derive(Debug, Clone, Default)]
pub struct PulsePipeline;

impl PulsePipeline {
    /// Installs the pipeline into any [`Host`] (simulated or wall-clock)
    /// and registers its queue with the progress-metric registry.
    ///
    /// # Panics
    ///
    /// Panics if the producer's reservation is rejected by admission
    /// control, which cannot happen on an otherwise empty host with
    /// the default configuration.
    pub fn install(host: &mut (impl Host + ?Sized), config: PipelineConfig) -> PipelineHandles {
        let queue = Arc::new(BoundedBuffer::new("pipeline", config.queue_capacity));
        let preload = ((config.queue_capacity as f64 * config.initial_fill).round() as usize)
            .min(config.queue_capacity);
        for _ in 0..preload {
            queue
                .try_push(DataBlock {
                    bytes: config.block_bytes,
                })
                .expect("preload fits by construction");
        }

        let producer_model = Producer {
            queue: Arc::clone(&queue),
            rate: config.production_rate.clone(),
            block_bytes: config.block_bytes,
            cycles_done: 0.0,
            pending_block: false,
            bytes_produced: 0.0,
        };
        let consumer_model = Consumer {
            queue: Arc::clone(&queue),
            bytes_per_cycle: config.consumer_bytes_per_cycle,
            cycles_remaining: 0.0,
            bytes_consumed: 0.0,
        };

        let producer = host
            .add_job(
                "producer",
                JobSpec::real_time(config.producer_proportion, config.producer_period),
                Box::new(producer_model),
            )
            .expect("producer reservation fits on an empty system");
        let consumer = host
            .add_job("consumer", JobSpec::real_rate(), Box::new(consumer_model))
            .expect("real-rate jobs are always admitted");

        let registry = host.registry();
        registry.register(JobKey(producer.job.0), Role::Producer, queue.clone());
        registry.register(JobKey(consumer.job.0), Role::Consumer, queue.clone());

        PipelineHandles {
            producer,
            consumer,
            queue,
        }
    }
}

/// Producer work model: loops for `block_bytes / rate(t)` cycles, then
/// enqueues a block; blocks when the queue is full.
struct Producer {
    queue: Arc<BoundedBuffer<DataBlock>>,
    rate: PulseTrain,
    block_bytes: usize,
    cycles_done: f64,
    pending_block: bool,
    bytes_produced: f64,
}

impl WorkModel for Producer {
    fn run(&mut self, now_us: u64, quantum_us: u64, cpu_hz: f64) -> RunResult {
        let now_s = now_us as f64 / 1e6;
        let bytes_per_cycle = self.rate.value(now_s).max(1e-12);
        let cycles_per_block = self.block_bytes as f64 / bytes_per_cycle;
        let mut cycles_available = quantum_us as f64 * cpu_hz / 1e6;
        let mut cycles_used = 0.0;

        // If a finished block is still waiting for queue space, try again.
        if self.pending_block {
            if self
                .queue
                .try_push(DataBlock {
                    bytes: self.block_bytes,
                })
                .is_ok()
            {
                self.pending_block = false;
                self.bytes_produced += self.block_bytes as f64;
            } else {
                return RunResult::blocked_after(0);
            }
        }

        while cycles_available > 0.0 {
            let needed = cycles_per_block - self.cycles_done;
            if cycles_available < needed {
                self.cycles_done += cycles_available;
                cycles_used += cycles_available;
                break;
            }
            cycles_used += needed;
            cycles_available -= needed;
            self.cycles_done = 0.0;
            if self
                .queue
                .try_push(DataBlock {
                    bytes: self.block_bytes,
                })
                .is_ok()
            {
                self.bytes_produced += self.block_bytes as f64;
            } else {
                self.pending_block = true;
                let used_us = (cycles_used / cpu_hz * 1e6).round() as u64;
                return RunResult::blocked_after(used_us.min(quantum_us));
            }
        }
        let used_us = (cycles_used / cpu_hz * 1e6).round() as u64;
        RunResult::ran(used_us.min(quantum_us).max(1))
    }

    fn poll_unblock(&mut self, _now_us: u64) -> bool {
        !self.queue.is_full()
    }

    fn progress_counter(&self) -> Option<f64> {
        Some(self.bytes_produced)
    }

    fn label(&self) -> &str {
        "producer"
    }
}

/// Consumer work model: dequeues a block, then loops for
/// `block_bytes / bytes_per_cycle` cycles; blocks when the queue is empty.
struct Consumer {
    queue: Arc<BoundedBuffer<DataBlock>>,
    bytes_per_cycle: f64,
    cycles_remaining: f64,
    bytes_consumed: f64,
}

impl WorkModel for Consumer {
    fn run(&mut self, _now_us: u64, quantum_us: u64, cpu_hz: f64) -> RunResult {
        let mut cycles_available = quantum_us as f64 * cpu_hz / 1e6;
        let mut cycles_used = 0.0;

        loop {
            if self.cycles_remaining <= 0.0 {
                // Fetch the next block.
                match self.queue.try_pop() {
                    Some(block) => {
                        self.cycles_remaining = block.bytes as f64 / self.bytes_per_cycle;
                        self.bytes_consumed += block.bytes as f64;
                    }
                    None => {
                        let used_us = (cycles_used / cpu_hz * 1e6).round() as u64;
                        return RunResult::blocked_after(used_us.min(quantum_us));
                    }
                }
            }
            if cycles_available < self.cycles_remaining {
                self.cycles_remaining -= cycles_available;
                cycles_used += cycles_available;
                break;
            }
            cycles_used += self.cycles_remaining;
            cycles_available -= self.cycles_remaining;
            self.cycles_remaining = 0.0;
        }
        let used_us = (cycles_used / cpu_hz * 1e6).round() as u64;
        RunResult::ran(used_us.min(quantum_us).max(1))
    }

    fn poll_unblock(&mut self, _now_us: u64) -> bool {
        !self.queue.is_empty()
    }

    fn progress_counter(&self) -> Option<f64> {
        Some(self.bytes_consumed)
    }

    fn label(&self) -> &str {
        "consumer"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrs_queue::ProgressMetric;
    use rrs_sim::{SimConfig, Simulation};

    fn fast_sim() -> Simulation {
        Simulation::new(SimConfig::default())
    }

    #[test]
    fn pipeline_installs_and_registers_queue() {
        let mut sim = fast_sim();
        let handles = PulsePipeline::install(&mut sim, PipelineConfig::default());
        assert_eq!(handles.queue.capacity(), 40);
        assert_eq!(handles.queue.len(), 20); // preloaded to half full
        assert_eq!(
            sim.registry()
                .attachments_for(JobKey(handles.producer.job.0))
                .len(),
            1
        );
        assert_eq!(
            sim.registry()
                .attachments_for(JobKey(handles.consumer.job.0))
                .len(),
            1
        );
    }

    #[test]
    fn steady_pipeline_reaches_balanced_fill() {
        let mut sim = fast_sim();
        let handles = PulsePipeline::install(&mut sim, PipelineConfig::steady(2.5e-5));
        sim.run_for(20.0);
        // The consumer's allocation should have converged near the
        // producer's (both need ~200 ‰ to move 2000 bytes/s).
        let consumer_alloc = sim.current_allocation_ppt(handles.consumer);
        assert!(
            (100..=400).contains(&consumer_alloc),
            "consumer allocation {consumer_alloc} should be near the producer's 200"
        );
        // The queue should not be pinned at empty or full.
        let fill = handles.queue.sample().fraction();
        assert!(
            (0.05..=0.95).contains(&fill),
            "steady-state fill level {fill} should be away from the rails"
        );
    }

    #[test]
    fn consumer_tracks_producer_rate_doubling() {
        let mut sim = fast_sim();
        // One long pulse starting at t = 5 s.
        let config = PipelineConfig {
            production_rate: PulseTrain::new(2.5e-5, 5.0e-5, vec![(5.0, 30.0)]),
            ..PipelineConfig::default()
        };
        let handles = PulsePipeline::install(&mut sim, config);
        sim.run_for(4.0);
        let before = sim.current_allocation_ppt(handles.consumer);
        sim.run_for(26.0);
        let after = sim.current_allocation_ppt(handles.consumer);
        assert!(
            after as f64 > before as f64 * 1.5,
            "consumer allocation should roughly double ({before} -> {after})"
        );
    }

    #[test]
    fn producer_reservation_is_not_modified_by_controller() {
        let mut sim = fast_sim();
        let handles = PulsePipeline::install(&mut sim, PipelineConfig::default());
        sim.run_for(10.0);
        assert_eq!(sim.current_allocation_ppt(handles.producer), 200);
    }

    #[test]
    fn progress_rates_are_recorded() {
        let mut sim = fast_sim();
        let _handles = PulsePipeline::install(&mut sim, PipelineConfig::steady(2.5e-5));
        sim.run_for(5.0);
        let trace = sim.trace();
        assert!(trace.get("rate/producer").is_some());
        assert!(trace.get("rate/consumer").is_some());
        assert!(trace.get("fill/pipeline").is_some());
        // Producer should be moving roughly 2000 bytes/s once warmed up.
        let rate = trace
            .get("rate/producer")
            .unwrap()
            .window_mean(2.0, 5.0)
            .unwrap();
        assert!(
            (1000.0..3000.0).contains(&rate),
            "producer rate {rate} should be near 2000 bytes/s"
        );
    }
}
