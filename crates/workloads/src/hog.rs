//! CPU hogs and dummy processes.

use rrs_sim::{RunResult, WorkModel};

/// A miscellaneous job that consumes every cycle it is offered and never
/// blocks — the "competing load" of Figure 7 and the probe process of the
/// Figure 8 dispatch-overhead experiment.
#[derive(Debug, Default)]
pub struct CpuHog {
    total_cycles: f64,
}

impl CpuHog {
    /// Creates a hog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total cycles consumed so far.
    pub fn cycles(&self) -> f64 {
        self.total_cycles
    }
}

impl WorkModel for CpuHog {
    fn run(&mut self, _now_us: u64, quantum_us: u64, cpu_hz: f64) -> RunResult {
        self.total_cycles += quantum_us as f64 * cpu_hz / 1e6;
        RunResult::ran(quantum_us)
    }

    fn progress_counter(&self) -> Option<f64> {
        Some(self.total_cycles)
    }

    fn label(&self) -> &str {
        "cpu-hog"
    }
}

/// A process that consumes no CPU at all but remains registered with the
/// scheduler and controller.
///
/// Figure 5 measures controller overhead against "dummy processes that
/// consume no CPU but are scheduled, monitored, and controlled"; this is
/// that process.
#[derive(Debug, Default)]
pub struct DummyProcess;

impl DummyProcess {
    /// Creates a dummy process.
    pub fn new() -> Self {
        Self
    }
}

impl WorkModel for DummyProcess {
    fn run(&mut self, _now_us: u64, _quantum_us: u64, _cpu_hz: f64) -> RunResult {
        RunResult::blocked_after(0)
    }

    fn poll_unblock(&mut self, _now_us: u64) -> bool {
        false
    }

    fn label(&self) -> &str {
        "dummy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrs_core::JobSpec;
    use rrs_sim::{SimConfig, Simulation};

    #[test]
    fn hog_uses_full_quantum() {
        let mut hog = CpuHog::new();
        let r = hog.run(0, 1000, 400e6);
        assert_eq!(r.used_us, 1000);
        assert!(!r.blocked);
        assert_eq!(hog.cycles(), 400e6 * 0.001);
        assert_eq!(hog.progress_counter(), Some(hog.cycles()));
        assert_eq!(hog.label(), "cpu-hog");
    }

    #[test]
    fn dummy_never_uses_cpu_and_never_wakes() {
        let mut d = DummyProcess::new();
        let r = d.run(0, 1000, 400e6);
        assert_eq!(r.used_us, 0);
        assert!(r.blocked);
        assert!(!d.poll_unblock(1_000_000));
        assert_eq!(d.label(), "dummy");
    }

    #[test]
    fn hog_in_simulation_consumes_nearly_all_cpu_when_alone() {
        let mut sim = Simulation::new(SimConfig::default());
        let h = sim
            .add_job("hog", JobSpec::miscellaneous(), Box::new(CpuHog::new()))
            .unwrap();
        sim.run_for(5.0);
        let fraction = sim.cpu_used_us(h) as f64 / sim.now_micros() as f64;
        assert!(fraction > 0.5, "hog got {fraction}");
    }
}
