//! Workload generators for the real-rate scheduling experiments.
//!
//! Every experiment in the paper's evaluation is driven by a small set of
//! synthetic applications; this crate reproduces them as [`rrs_sim::WorkModel`]
//! implementations:
//!
//! * [`hog::CpuHog`] — a miscellaneous job that consumes every cycle it is
//!   offered (the "competing load" of Figure 7).
//! * [`hog::DummyProcess`] — consumes no CPU but is scheduled, monitored and
//!   controlled (the Figure 5 overhead experiment).
//! * [`pipeline`] — the pulse-driven producer/consumer pipeline of
//!   Figures 6 and 7: a producer with a fixed reservation and a variable
//!   production rate, a consumer with a fixed consumption rate whose
//!   allocation the controller must discover.
//! * [`video`] — a multi-stage multimedia pipeline in which one stage (the
//!   decoder) needs far more CPU than the others (§4.4).
//! * [`server`] — a web-server model: requests arrive from the network into
//!   a bounded queue and the server thread consumes them (§3.2 "Server").
//! * [`interactive`] — an interactive job that sleeps on a tty and wakes for
//!   short bursts of work (§3.2 "Interactive").
//! * [`io`] — an I/O-intensive job consuming data produced by a simulated
//!   disk at fixed bandwidth (§3.2 "I/O intensive").
//! * [`modem`] — an isochronous software modem (§1) that must process a
//!   sample batch every period; the reservation-vs-best-effort comparison
//!   shows why such devices bypass the adaptive controller.
//! * [`latency`] — the shared per-request latency histograms the server
//!   and interactive models optionally record into, feeding the scenario
//!   engine's percentile SLOs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod hog;
pub mod interactive;
pub mod io;
pub mod latency;
pub mod modem;
pub mod pipeline;
pub mod server;
pub mod video;

pub use hog::{CpuHog, DummyProcess};
pub use interactive::InteractiveJob;
pub use io::DiskReader;
pub use latency::{LatencyStats, LatencySummary};
pub use modem::{ModemConfig, ModemStats, SoftwareModem};
pub use pipeline::{PipelineConfig, PipelineHandles, PulsePipeline};
pub use server::{RequestGenerator, ServerConfig, WebServer};
pub use video::{VideoPipeline, VideoPipelineConfig, VideoPipelineHandles};
