//! An isochronous software device — the "software modem" of §1.
//!
//! A software modem must process a sample buffer every few milliseconds or
//! the line drops: it is the paper's canonical example of an *isochronous
//! software device* that knows its proportion and period exactly and should
//! therefore bypass the adaptive controller with a reservation (§3.3,
//! real-time threads).  The model here processes one sample batch per
//! period; a batch that is not finished by the arrival of the next one is a
//! missed deadline.

use rrs_api::Host;
use rrs_core::{JobHandle, JobSpec};
use rrs_scheduler::{Period, Proportion};
use rrs_sim::{RunResult, SimTime, WorkModel};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared deadline counters, readable while the simulation owns the model.
#[derive(Debug, Default)]
pub struct ModemStats {
    batches_completed: AtomicU64,
    deadlines_missed: AtomicU64,
}

impl ModemStats {
    /// Sample batches fully processed.
    pub fn batches_completed(&self) -> u64 {
        self.batches_completed.load(Ordering::Relaxed)
    }

    /// Batches that were not finished before the next one arrived.
    pub fn deadlines_missed(&self) -> u64 {
        self.deadlines_missed.load(Ordering::Relaxed)
    }

    /// Miss ratio in `[0, 1]`.
    pub fn miss_ratio(&self) -> f64 {
        let done = self.batches_completed() + self.deadlines_missed();
        if done == 0 {
            0.0
        } else {
            self.deadlines_missed() as f64 / done as f64
        }
    }
}

/// Configuration of the software modem.
#[derive(Debug, Clone, Copy)]
pub struct ModemConfig {
    /// Sample-batch period in microseconds (how often a batch arrives).
    pub batch_period_us: u64,
    /// CPU cycles needed to process one batch.
    pub cycles_per_batch: f64,
}

impl Default for ModemConfig {
    fn default() -> Self {
        // A batch every 10 ms costing 800 kcycles: 20 % of a 400 MHz CPU.
        Self {
            batch_period_us: 10_000,
            cycles_per_batch: 0.8e6,
        }
    }
}

impl ModemConfig {
    /// The proportion of the given CPU this modem needs to meet every
    /// deadline, with the given safety headroom factor (e.g. 1.2 = 20 %).
    pub fn required_proportion(&self, cpu_hz: f64, headroom: f64) -> Proportion {
        let cycles_per_sec = self.cycles_per_batch * 1e6 / self.batch_period_us as f64;
        Proportion::from_fraction(cycles_per_sec * headroom / cpu_hz)
    }

    /// The reservation period matching the batch period.
    pub fn period(&self) -> Period {
        Period::from_micros(self.batch_period_us.max(1))
    }
}

/// The modem work model.
#[derive(Debug)]
pub struct SoftwareModem {
    config: ModemConfig,
    stats: Arc<ModemStats>,
    next_batch_us: u64,
    cycles_remaining: f64,
    batch_in_flight: bool,
}

impl SoftwareModem {
    /// Creates a modem and returns it together with its shared statistics.
    pub fn new(config: ModemConfig) -> (Self, Arc<ModemStats>) {
        let stats = Arc::new(ModemStats::default());
        (
            Self {
                config,
                stats: Arc::clone(&stats),
                next_batch_us: 0,
                cycles_remaining: 0.0,
                batch_in_flight: false,
            },
            stats,
        )
    }

    /// Installs the modem into any [`Host`] as a real-time job with
    /// exactly the reservation it needs (plus 20 % headroom), as the paper
    /// recommends for isochronous devices.  The reservation is sized
    /// against the host's own clock rate ([`Host::cpu_hz`]).  Returns the
    /// handle and the shared statistics.
    pub fn install_with_reservation(
        host: &mut (impl Host + ?Sized),
        config: ModemConfig,
    ) -> (JobHandle, Arc<ModemStats>) {
        let (modem, stats) = SoftwareModem::new(config);
        let spec = JobSpec::real_time(
            config.required_proportion(host.cpu_hz(), 1.2),
            config.period(),
        );
        let handle = host
            .add_job("modem", spec, Box::new(modem))
            .expect("modem reservation must be admitted");
        (handle, stats)
    }

    /// Installs the modem as a plain miscellaneous job (no reservation, no
    /// progress metric) — the configuration the paper warns against for
    /// isochronous devices.
    pub fn install_best_effort(
        host: &mut (impl Host + ?Sized),
        config: ModemConfig,
    ) -> (JobHandle, Arc<ModemStats>) {
        let (modem, stats) = SoftwareModem::new(config);
        let handle = host
            .add_job("modem", JobSpec::miscellaneous(), Box::new(modem))
            .expect("misc jobs are always admitted");
        (handle, stats)
    }
}

impl WorkModel for SoftwareModem {
    fn run(&mut self, now_us: u64, quantum_us: u64, cpu_hz: f64) -> RunResult {
        if self.next_batch_us == 0 {
            self.next_batch_us = now_us + self.config.batch_period_us;
        }
        // New batch arrivals; an unfinished batch at arrival time is a miss
        // and is abandoned (the line glitches and we resynchronise).
        while self.next_batch_us <= now_us {
            if self.batch_in_flight {
                self.stats.deadlines_missed.fetch_add(1, Ordering::Relaxed);
            }
            self.batch_in_flight = true;
            self.cycles_remaining = self.config.cycles_per_batch;
            self.next_batch_us += self.config.batch_period_us;
        }
        if !self.batch_in_flight {
            return RunResult::blocked_after(0);
        }
        let cycles_available = quantum_us as f64 * cpu_hz / 1e6;
        if cycles_available < self.cycles_remaining {
            self.cycles_remaining -= cycles_available;
            return RunResult::ran(quantum_us.max(1));
        }
        let used_us = (self.cycles_remaining / cpu_hz * 1e6).round() as u64;
        self.cycles_remaining = 0.0;
        self.batch_in_flight = false;
        self.stats.batches_completed.fetch_add(1, Ordering::Relaxed);
        RunResult::blocked_after(used_us.clamp(1, quantum_us))
    }

    fn poll_unblock(&mut self, now_us: u64) -> bool {
        self.batch_in_flight || self.next_batch_us == 0 || now_us + 1 >= self.next_batch_us
    }

    fn next_transition(&self, now: SimTime) -> Option<SimTime> {
        // Sample batches arrive on the line's fixed cadence.
        if self.batch_in_flight || self.next_batch_us == 0 {
            return Some(now);
        }
        Some(SimTime::from_micros(self.next_batch_us.saturating_sub(1)))
    }

    fn progress_counter(&self) -> Option<f64> {
        Some(self.stats.batches_completed() as f64)
    }

    fn label(&self) -> &str {
        "software-modem"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hog::CpuHog;
    use rrs_sim::{SimConfig, Simulation};

    #[test]
    fn required_proportion_matches_the_arithmetic() {
        let config = ModemConfig::default();
        // 0.8 Mcycles per 10 ms = 80 Mcycles/s = 20 % of 400 MHz; with 1.2×
        // headroom that is 240 ‰.
        assert_eq!(config.required_proportion(400e6, 1.2).ppt(), 240);
        assert_eq!(config.period(), Period::from_millis(10));
    }

    #[test]
    fn reserved_modem_meets_its_deadlines_despite_hogs() {
        let mut sim = Simulation::new(SimConfig::default());
        let (_handle, stats) =
            SoftwareModem::install_with_reservation(&mut sim, ModemConfig::default());
        for i in 0..3 {
            sim.add_job(
                &format!("hog{i}"),
                JobSpec::miscellaneous(),
                Box::new(CpuHog::new()),
            )
            .unwrap();
        }
        sim.run_for(10.0);
        assert!(
            stats.batches_completed() > 900,
            "completed {}",
            stats.batches_completed()
        );
        assert!(
            stats.miss_ratio() < 0.01,
            "reserved modem should essentially never miss, ratio {}",
            stats.miss_ratio()
        );
    }

    #[test]
    fn best_effort_modem_misses_under_heavy_load() {
        let mut sim = Simulation::new(SimConfig::default());
        let (_handle, stats) = SoftwareModem::install_best_effort(&mut sim, ModemConfig::default());
        for i in 0..6 {
            sim.add_job(
                &format!("hog{i}"),
                JobSpec::miscellaneous(),
                Box::new(CpuHog::new()),
            )
            .unwrap();
        }
        sim.run_for(10.0);
        // Without a reservation (and without a progress metric) the modem is
        // squished like any other job and drops batches.
        assert!(
            stats.deadlines_missed() > 0,
            "an unreserved isochronous device should miss under load"
        );
    }

    #[test]
    fn idle_modem_uses_roughly_its_required_share() {
        let mut sim = Simulation::new(SimConfig::default());
        let (handle, stats) =
            SoftwareModem::install_with_reservation(&mut sim, ModemConfig::default());
        sim.run_for(5.0);
        assert!(stats.miss_ratio() < 0.01);
        let used = sim.cpu_used_us(handle) as f64 / sim.now_micros() as f64;
        assert!(
            (0.15..0.30).contains(&used),
            "the modem needs ≈20 % of the CPU, used {used}"
        );
    }
}
