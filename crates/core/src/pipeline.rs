//! The staged control-plane pipeline.
//!
//! One controller period flows through six explicit stages, each a named
//! function over a shared, reusable [`CycleContext`]:
//!
//! 1. **sense** — sample every job's progress metrics (fill levels, signed
//!    pressure) and dispatcher usage feedback into dense cycle records;
//! 2. **classify** — derive each job's effective Figure 2 class from its
//!    spec plus the sensed metric visibility, and fix reserved jobs'
//!    proportions and periods;
//! 3. **estimate** — run the per-job PID pressure function (Figure 3) and
//!    the proportion estimator (Figure 4) for adaptive jobs, including the
//!    usage-based reclamation branch and optional period estimation;
//! 4. **allocate** — detect overload against the machine-wide admission
//!    threshold (`threshold × CPUs`) and squish adaptive allocations by
//!    the configured policy (§3.3);
//! 5. **place** — assign each job a CPU: keep the placement the job
//!    already has, pull jobs that fell off a shrunken machine back on,
//!    and migrate one squishable job per cycle from the most to the
//!    least loaded CPU when the imbalance exceeds the configured bound
//!    (a no-op on the paper's single CPU);
//! 6. **actuate** — commit grants and placements to the job table and
//!    emit the reservation actuations, squish/migration events and
//!    quality exceptions.
//!
//! Every buffer the stages touch lives in the [`CycleContext`] (or the
//! reused [`crate::ControlOutput`]), so a warmed-up steady-state cycle
//! performs **no heap allocation** and runs in `O(jobs + attachments)`
//! with cache-friendly linear scans over the slot table.  The stages only
//! communicate through the context, which keeps them independently
//! testable and swappable.

use crate::config::ControllerConfig;
use crate::controller::{Actuation, ControlOutput, JobId, UsageSnapshot};
use crate::estimator::ProportionEstimator;
use crate::events::{ControllerEvent, QualityException};
use crate::period::PeriodEstimator;
use crate::pressure::PressureEstimator;
use crate::slot::{JobSlot, SlotTable};
use crate::squish::{squish_into, Importance, SquishRequest, SquishScratch};
use crate::taxonomy::{JobClass, JobSpec};
use rrs_queue::MetricRegistry;
use rrs_scheduler::{CpuId, Period, Proportion, Reservation};

/// Per-job controller state: the payload of the controller's slot table.
#[derive(Debug)]
pub(crate) struct JobEntry {
    pub(crate) spec: JobSpec,
    pub(crate) importance: Importance,
    pub(crate) pressure: PressureEstimator,
    pub(crate) period_estimator: PeriodEstimator,
    pub(crate) period: Period,
    pub(crate) granted: Proportion,
    /// The CPU the Place stage has the job on.
    pub(crate) cpu: CpuId,
    /// Usage feedback most recently recorded.  Sticky: it persists until
    /// the caller overwrites it, so a job that stops reporting keeps its
    /// last known ratio.
    pub(crate) usage: UsageSnapshot,
    /// Incremental cache: whether the registry exposed a progress metric
    /// for this job at the last full cycle (valid while the registry
    /// version is unchanged).
    pub(crate) has_metric: bool,
    /// Incremental cache: the desired proportion from this job's last
    /// recompute, the input the Allocate stage squishes.
    pub(crate) desired: Proportion,
    /// Incremental: the last recompute was a proven bitwise no-op, so the
    /// job can be skipped until one of its inputs changes.
    pub(crate) settled: bool,
    /// Incremental: the usage snapshot changed since the last recompute.
    pub(crate) usage_dirty: bool,
}

/// The controller's dense per-job working state for one cycle.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CycleRecord {
    pub(crate) slot: JobSlot,
    pub(crate) job: JobId,
    /// Sense: `true` if the registry exposes a progress metric for the job.
    pub(crate) has_metric: bool,
    /// Sense: summed signed pressure `Σ_i R_{t,i}·F_{t,i}`, if sensed.
    pub(crate) summed_pressure: Option<f64>,
    /// Sense: fraction of the last allocation the job actually used.
    pub(crate) usage_ratio: f64,
    /// Sense: this job's span inside [`CycleContext::fills`].
    fills_start: u32,
    fills_len: u32,
    /// Classify: the effective class this cycle.
    pub(crate) class: JobClass,
    /// Classify: importance weight (copied out so Allocate needs no table).
    pub(crate) importance: Importance,
    /// Estimate: cumulative progress pressure `Q_t` (adaptive jobs).
    pub(crate) pressure_q: f64,
    /// Classify (fixed) / Estimate (adaptive): desired proportion.
    pub(crate) desired: Proportion,
    /// Classify (fixed) / Estimate (adaptive): period to actuate.
    pub(crate) period: Period,
    /// Place: the grant this cycle settled on (desired for fixed jobs,
    /// the squish result for adaptive ones).
    pub(crate) granted: Proportion,
    /// Place: the CPU the job runs on this cycle.
    pub(crate) cpu: CpuId,
}

/// Reusable scratch shared by the pipeline stages.
///
/// All vectors are cleared — never shrunk — between cycles, so their
/// capacity warms up to the live job count and stays there.
#[derive(Debug, Default)]
pub struct CycleContext {
    /// Controller time at the start of the cycle, in seconds.
    now_s: f64,
    /// Seconds elapsed since the previous cycle.
    dt: f64,
    pub(crate) records: Vec<CycleRecord>,
    /// Flat pool of fill-level samples; records index into it.
    pub(crate) fills: Vec<f64>,
    /// Indices into `records` of the squishable (adaptive) jobs.
    pub(crate) adaptive: Vec<u32>,
    pub(crate) requests: Vec<SquishRequest>,
    pub(crate) granted: Vec<Proportion>,
    squish_scratch: SquishScratch,
    pub(crate) fixed_total_ppt: u32,
    pub(crate) available_ppt: u32,
    pub(crate) desired_total_ppt: u64,
    pub(crate) squished: bool,
    /// Place: granted load per CPU, in parts per thousand.
    pub(crate) cpu_load: Vec<u64>,
    /// Place: the migrations decided this cycle (at most one).
    pub(crate) migrations: Vec<(JobId, CpuId, CpuId)>,
}

impl CycleContext {
    /// Creates an empty context.
    pub fn new() -> Self {
        let mut ctx = Self::default();
        // The Place stage decides at most one migration per cycle; holding
        // the slot up front keeps the first-ever migration from allocating
        // inside a steady-state cycle.
        ctx.migrations.reserve(1);
        ctx
    }

    /// Begins a cycle: stores the clock and resets per-cycle accumulators.
    pub(crate) fn begin(&mut self, now_s: f64, dt: f64) {
        self.now_s = now_s;
        self.dt = dt;
        self.records.clear();
        self.fills.clear();
        self.adaptive.clear();
        self.requests.clear();
        self.granted.clear();
        self.migrations.clear();
        self.fixed_total_ppt = 0;
        self.available_ppt = 0;
        self.desired_total_ppt = 0;
        self.squished = false;
    }

    /// Controller time at the start of the current cycle, in seconds.
    pub fn now_s(&self) -> f64 {
        self.now_s
    }

    /// Seconds elapsed since the previous cycle.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Whether the Allocate stage squished allocations this cycle.
    pub fn was_squished(&self) -> bool {
        self.squished
    }

    /// Number of jobs the current cycle visited.
    pub fn jobs_visited(&self) -> usize {
        self.records.len()
    }
}

pub(crate) type JobTable = SlotTable<JobId, JobEntry>;

/// Stage 1 — **Sense**: samples the registry's progress metrics and the
/// per-job usage feedback into dense [`CycleRecord`]s.
///
/// Each attachment is sampled exactly once; the sample feeds both the
/// summed signed pressure (Figure 3) and, when period estimation is on,
/// the fill pool the Estimate stage replays into the period estimator.
/// Usage snapshots are sticky: the stage reads whatever was most recently
/// recorded and leaves it in place, so a job that stops reporting keeps
/// its last known ratio until the caller overwrites it.
pub(crate) fn sense(
    registry: &MetricRegistry,
    jobs: &mut JobTable,
    collect_fills: bool,
    ctx: &mut CycleContext,
) {
    for (slot, job, entry) in jobs.iter_mut() {
        let fills_start = ctx.fills.len() as u32;
        let mut any = false;
        let mut sum = 0.0;
        let fills = &mut ctx.fills;
        registry.for_each_attachment(job.key(), |a| {
            any = true;
            let sample = a.sample();
            sum += a.role.sign() * sample.centered();
            if collect_fills {
                fills.push(sample.fraction());
            }
        });
        let usage_ratio = entry.usage.usage_ratio;
        ctx.records.push(CycleRecord {
            slot,
            job,
            has_metric: any,
            summed_pressure: if any { Some(sum) } else { None },
            usage_ratio,
            fills_start,
            fills_len: ctx.fills.len() as u32 - fills_start,
            // Placeholders; later stages overwrite these.
            class: JobClass::Miscellaneous,
            importance: entry.importance,
            pressure_q: 0.0,
            desired: Proportion::ZERO,
            period: entry.period,
            granted: Proportion::ZERO,
            cpu: entry.cpu,
        });
    }
}

/// Stage 2 — **Classify**: derives each job's effective Figure 2 class
/// from its spec plus the sensed metric visibility.
///
/// Attaching a queue at run time promotes a miscellaneous job to
/// real-rate, and vice versa.  Real-time and aperiodic real-time jobs get
/// their reserved proportion and period fixed here and contribute to the
/// cycle's fixed total; squishable jobs are queued for the Estimate stage.
pub(crate) fn classify(config: &ControllerConfig, jobs: &mut JobTable, ctx: &mut CycleContext) {
    for (i, record) in ctx.records.iter_mut().enumerate() {
        let entry = jobs.get_mut(record.slot).expect("record slot is live");
        let spec = entry.spec.with_progress_metric(record.has_metric);
        let class = spec.classify();
        record.class = class;
        match class {
            JobClass::RealTime => {
                let p = spec.proportion.expect("real-time has proportion");
                let t = spec.period.expect("real-time has period");
                entry.period = t;
                record.desired = p;
                record.period = t;
                ctx.fixed_total_ppt += p.ppt();
            }
            JobClass::AperiodicRealTime => {
                let p = spec.proportion.expect("aperiodic has proportion");
                entry.period = config.default_period;
                record.desired = p;
                record.period = entry.period;
                ctx.fixed_total_ppt += p.ppt();
            }
            JobClass::RealRate | JobClass::Miscellaneous => {
                ctx.adaptive.push(i as u32);
            }
        }
    }
}

/// Stage 3 — **Estimate**: turns sensed pressure into desired allocations
/// for the adaptive (real-rate and miscellaneous) jobs.
///
/// Runs the per-job PID control function over the summed pressure
/// (Figure 3), then the proportion estimator `P'_t = k·Q_t` with the
/// usage-based "too generous" reclamation branch (Figure 4).  When a
/// reclamation fires, the PID state is damped so the reclaimed allocation
/// is not immediately re-requested.  Optionally replays the sensed fill
/// levels into the period estimator (§3.3's heuristic, off by default as
/// in the paper).
pub(crate) fn estimate(
    config: &ControllerConfig,
    estimator: &ProportionEstimator,
    jobs: &mut JobTable,
    ctx: &mut CycleContext,
) {
    // Split the context into disjoint field borrows so each record can be
    // updated in place (no per-record copy in and out of the vec).
    let CycleContext {
        dt,
        records,
        fills,
        adaptive,
        ..
    } = ctx;
    let dt = *dt;
    for &rec_idx in adaptive.iter() {
        let record = &mut records[rec_idx as usize];
        let entry = jobs.get_mut(record.slot).expect("record slot is live");

        let summed = match record.class {
            // Real-rate: drive from observed progress.  Miscellaneous:
            // constant positive pressure — keep asking for more CPU until
            // satisfied or squished.
            JobClass::RealRate => record.summed_pressure.unwrap_or(config.misc_pressure),
            _ => config.misc_pressure,
        };
        let q = entry.pressure.update(summed, dt);
        let outcome = estimator.estimate(entry.granted, q, record.usage_ratio);
        if outcome.reclaimed {
            // Damp the PID state so the reclaimed allocation is not
            // immediately re-requested.
            let target = if entry.granted.ppt() > 0 {
                outcome.desired.ppt() as f64 / entry.granted.ppt() as f64
            } else {
                0.0
            };
            entry.pressure.scale_state(target.clamp(0.0, 1.0));
        }

        if config.period_estimation && record.class == JobClass::RealRate {
            let start = record.fills_start as usize;
            for &fill in &fills[start..start + record.fills_len as usize] {
                entry.period_estimator.observe_fill(fill);
            }
            entry.period = entry
                .period_estimator
                .end_period(entry.granted, entry.period);
        } else if entry.spec.period.is_none() {
            entry.period = config.default_period;
        }

        record.pressure_q = q;
        record.desired = outcome.desired;
        record.period = entry.period;
    }
}

/// Stage 4 — **Allocate**: overload detection and squishing (§3.3,
/// "Responding to Overload").
///
/// Sums the adaptive jobs' desired proportions against the capacity left
/// under the overload threshold by the fixed reservations.  The machine's
/// capacity is `overload_threshold × CPUs`: on the paper's single CPU
/// this is exactly the original threshold, and each extra CPU adds one
/// threshold's worth of grantable allocation.  Under overload, applies
/// the configured squish policy (fair share or importance-weighted
/// water-fill); otherwise grants every desire unchanged.  Grants land in
/// the context, aligned with the adaptive index list.
pub(crate) fn allocate(config: &ControllerConfig, ctx: &mut CycleContext) {
    let capacity_ppt = config.overload_threshold_ppt * config.placement.cpu_count() as u32;
    ctx.available_ppt = capacity_ppt.saturating_sub(ctx.fixed_total_ppt);
    ctx.desired_total_ppt = ctx
        .adaptive
        .iter()
        .map(|&i| ctx.records[i as usize].desired.ppt() as u64)
        .sum();

    if ctx.desired_total_ppt > ctx.available_ppt as u64 {
        ctx.squished = true;
        ctx.requests.clear();
        for &i in &ctx.adaptive {
            let r = &ctx.records[i as usize];
            ctx.requests.push(SquishRequest {
                desired: r.desired,
                importance: r.importance,
                floor: config.min_proportion,
            });
        }
        squish_into(
            config.squish_policy,
            &ctx.requests,
            ctx.available_ppt,
            &mut ctx.squish_scratch,
            &mut ctx.granted,
        );
    } else {
        ctx.granted.clear();
        for &i in &ctx.adaptive {
            ctx.granted.push(ctx.records[i as usize].desired);
        }
    }
}

/// Stage 5 — **Place**: assigns each job a CPU and decides migrations.
///
/// Jobs keep the CPU they are on (placement is sticky — moving a thread
/// costs cache and, on a real machine, TLB state); jobs whose CPU fell
/// off a shrunken machine are pulled back onto it.  When the most loaded
/// CPU's granted proportion exceeds the least loaded CPU's by more than
/// the configured imbalance bound, the squishable job whose grant is
/// closest to half the gap migrates — moving half the gap is the largest
/// step that cannot overshoot and flip the imbalance, and one migration
/// per cycle keeps the stage `O(jobs)` and the system stable.  Real-time
/// jobs never migrate: their reservation was admitted against a specific
/// CPU.  Per-CPU over-subscription that placement cannot resolve (for
/// example three equal grants on two CPUs) is left to the dispatcher's
/// rate-monotonic best effort and heals through usage feedback: a job
/// that cannot actually consume its grant on a crowded CPU is reclaimed
/// by the Estimate stage the following cycles.
///
/// On the default single CPU this stage only pins every job to `cpu0`
/// and computes the (single) load sum: grants, periods and ordering are
/// untouched, so the paper's figures reproduce exactly.
pub(crate) fn place(config: &ControllerConfig, jobs: &mut JobTable, ctx: &mut CycleContext) {
    let cpus = config.placement.cpu_count();
    ctx.cpu_load.clear();
    ctx.cpu_load.resize(cpus, 0);
    ctx.migrations.clear();

    // Fold the Allocate stage's grants back into the records so every
    // record carries its final grant (fixed jobs keep their desire).
    for record in ctx.records.iter_mut() {
        if !record.class.is_squishable() {
            record.granted = record.desired;
        }
    }
    for (&i, &grant) in ctx.adaptive.iter().zip(ctx.granted.iter()) {
        ctx.records[i as usize].granted = grant;
    }

    // Sticky placement + per-CPU load accounting.
    for record in ctx.records.iter_mut() {
        let entry = jobs.get_mut(record.slot).expect("record slot is live");
        if entry.cpu.index() >= cpus {
            entry.cpu = CpuId((entry.cpu.index() % cpus) as u32);
        }
        record.cpu = entry.cpu;
        ctx.cpu_load[entry.cpu.index()] += record.granted.ppt() as u64;
    }
    if cpus == 1 {
        return;
    }

    // Threshold-triggered migration: most → least loaded CPU.
    let (mut max_c, mut min_c) = (0usize, 0usize);
    for (i, &load) in ctx.cpu_load.iter().enumerate() {
        if load > ctx.cpu_load[max_c] {
            max_c = i;
        }
        if load < ctx.cpu_load[min_c] {
            min_c = i;
        }
    }
    let gap = ctx.cpu_load[max_c] - ctx.cpu_load[min_c];
    if gap <= config.placement.imbalance_threshold_ppt as u64 {
        return;
    }
    let mut best: Option<(u64, usize)> = None;
    for (idx, record) in ctx.records.iter().enumerate() {
        if record.cpu.index() != max_c || !record.class.is_squishable() {
            continue;
        }
        let g = record.granted.ppt() as u64;
        // Only moves that strictly reduce the gap qualify (0 < g < gap);
        // among those, prefer the grant closest to half the gap.
        if g == 0 || g >= gap {
            continue;
        }
        let dist = g.abs_diff(gap / 2);
        if best.is_none_or(|(d, _)| dist < d) {
            best = Some((dist, idx));
        }
    }
    let Some((_, idx)) = best else { return };
    let record = &mut ctx.records[idx];
    let from = record.cpu;
    let to = CpuId(min_c as u32);
    record.cpu = to;
    jobs.get_mut(record.slot).expect("record slot is live").cpu = to;
    ctx.cpu_load[max_c] -= record.granted.ppt() as u64;
    ctx.cpu_load[min_c] += record.granted.ppt() as u64;
    ctx.migrations.push((record.job, from, to));
}

/// Stage 6 — **Actuate**: commits grants to the job table and writes the
/// cycle's outputs — reservation actuations (each carrying its Place-stage
/// CPU), the squish and migration events, and quality exceptions for
/// adaptive jobs whose demand could not be met — into the reusable
/// [`ControlOutput`].
pub(crate) fn actuate(
    config: &ControllerConfig,
    jobs: &mut JobTable,
    ctx: &CycleContext,
    out: &mut ControlOutput,
) {
    out.actuations.clear();
    out.events.clear();
    out.total_granted_ppt = 0;

    if ctx.squished {
        out.events.push(ControllerEvent::Squished {
            desired_total_ppt: ctx.desired_total_ppt,
            available_ppt: ctx.available_ppt,
        });
    }
    for &(job, from, to) in &ctx.migrations {
        out.events.push(ControllerEvent::Migrated { job, from, to });
    }

    // Fixed reservations first, then adaptive grants, mirroring the order
    // in which they were decided.
    for record in &ctx.records {
        if record.class.is_squishable() {
            continue;
        }
        let entry = jobs.get_mut(record.slot).expect("record slot is live");
        entry.granted = record.desired;
        out.total_granted_ppt += record.desired.ppt();
        out.actuations.push(Actuation {
            slot: record.slot,
            job: record.job,
            reservation: Reservation::new(record.desired, record.period),
            cpu: record.cpu,
        });
    }

    for (&i, &grant) in ctx.adaptive.iter().zip(ctx.granted.iter()) {
        let record = &ctx.records[i as usize];
        let entry = jobs.get_mut(record.slot).expect("record slot is live");
        entry.granted = grant;
        out.total_granted_ppt += grant.ppt();
        if grant.ppt() < record.desired.ppt()
            && record.pressure_q.abs() >= config.quality_exception_pressure
        {
            out.events.push(ControllerEvent::Quality(QualityException {
                job: record.job,
                desired: record.desired,
                granted: grant,
                pressure: record.pressure_q,
                time: ctx.now_s,
            }));
        }
        out.actuations.push(Actuation {
            slot: record.slot,
            job: record.job,
            reservation: Reservation::new(grant, record.period),
            cpu: record.cpu,
        });
    }

    out.cost_us = config.cost_model.invocation_cost_us(jobs.len());
}

impl JobEntry {
    pub(crate) fn new(spec: JobSpec, importance: Importance, config: &ControllerConfig) -> Self {
        let class = spec.classify();
        let period = spec.period.unwrap_or(config.default_period);
        let initial = match class {
            JobClass::RealTime | JobClass::AperiodicRealTime => {
                spec.proportion.unwrap_or(config.min_proportion)
            }
            _ => config.min_proportion,
        };
        Self {
            spec,
            importance,
            pressure: PressureEstimator::new(config.pid),
            period_estimator: PeriodEstimator::with_defaults(),
            period,
            granted: initial,
            cpu: CpuId::ZERO,
            usage: UsageSnapshot::default(),
            has_metric: false,
            desired: initial,
            settled: false,
            usage_dirty: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrs_queue::{BoundedBuffer, JobKey, Role};
    use std::sync::Arc;

    fn table_with(specs: &[(u64, JobSpec)]) -> (JobTable, ControllerConfig) {
        let config = ControllerConfig::default();
        let mut table = JobTable::new();
        for &(id, spec) in specs {
            let entry = JobEntry::new(spec, Importance::NORMAL, &config);
            table.insert(JobId(id), entry).expect("unique test ids");
        }
        (table, config)
    }

    fn full_queue(capacity: usize) -> Arc<BoundedBuffer<u8>> {
        let q = Arc::new(BoundedBuffer::new("q", capacity));
        for i in 0..capacity {
            q.try_push(i as u8).unwrap();
        }
        q
    }

    fn run_sense(registry: &MetricRegistry, jobs: &mut JobTable, ctx: &mut CycleContext) {
        ctx.begin(0.01, 0.01);
        sense(registry, jobs, true, ctx);
    }

    #[test]
    fn sense_samples_pressure_fills_and_usage() {
        let (mut jobs, _config) = table_with(&[(1, JobSpec::real_rate())]);
        let registry = MetricRegistry::new();
        registry.register(JobKey(1), Role::Consumer, full_queue(4));
        let slot = jobs.slot_of(JobId(1)).unwrap();
        jobs.get_mut(slot).unwrap().usage = UsageSnapshot { usage_ratio: 0.25 };

        let mut ctx = CycleContext::new();
        run_sense(&registry, &mut jobs, &mut ctx);

        assert_eq!(ctx.records.len(), 1);
        let r = &ctx.records[0];
        assert!(r.has_metric);
        // Consumer of a full queue: summed signed pressure +1/2.
        assert_eq!(r.summed_pressure, Some(0.5));
        assert_eq!(r.usage_ratio, 0.25);
        let fills = &ctx.fills[r.fills_start as usize..][..r.fills_len as usize];
        assert_eq!(fills, &[1.0]);
        // Snapshots are sticky: sensing leaves the recorded value in place,
        // so the next cycle sees the same ratio until it is overwritten.
        assert_eq!(
            jobs.get(slot).unwrap().usage,
            UsageSnapshot { usage_ratio: 0.25 }
        );
    }

    #[test]
    fn sense_reports_no_metric_without_attachments() {
        let (mut jobs, _config) = table_with(&[(1, JobSpec::miscellaneous())]);
        let registry = MetricRegistry::new();
        let mut ctx = CycleContext::new();
        run_sense(&registry, &mut jobs, &mut ctx);
        assert!(!ctx.records[0].has_metric);
        assert_eq!(ctx.records[0].summed_pressure, None);
        assert!(ctx.fills.is_empty());
    }

    #[test]
    fn classify_splits_fixed_from_adaptive_and_fixes_periods() {
        use rrs_scheduler::{Period, Proportion};
        let (mut jobs, config) = table_with(&[
            (
                1,
                JobSpec::real_time(Proportion::from_ppt(300), Period::from_millis(20)),
            ),
            (2, JobSpec::aperiodic_real_time(Proportion::from_ppt(100))),
            (3, JobSpec::miscellaneous()),
        ]);
        let registry = MetricRegistry::new();
        // Job 4 registered as miscellaneous but with a visible metric: the
        // classify stage must promote it to real-rate.
        let entry = JobEntry::new(JobSpec::miscellaneous(), Importance::NORMAL, &config);
        jobs.insert(JobId(4), entry).unwrap();
        registry.register(JobKey(4), Role::Consumer, full_queue(2));

        let mut ctx = CycleContext::new();
        run_sense(&registry, &mut jobs, &mut ctx);
        classify(&config, &mut jobs, &mut ctx);

        assert_eq!(ctx.records[0].class, JobClass::RealTime);
        assert_eq!(ctx.records[0].desired.ppt(), 300);
        assert_eq!(ctx.records[0].period, Period::from_millis(20));
        assert_eq!(ctx.records[1].class, JobClass::AperiodicRealTime);
        assert_eq!(ctx.records[1].period, config.default_period);
        assert_eq!(ctx.records[2].class, JobClass::Miscellaneous);
        assert_eq!(ctx.records[3].class, JobClass::RealRate);
        assert_eq!(ctx.fixed_total_ppt, 400);
        assert_eq!(ctx.adaptive, vec![2, 3]);
    }

    #[test]
    fn estimate_grows_desire_under_positive_pressure() {
        let (mut jobs, config) = table_with(&[(1, JobSpec::real_rate())]);
        let registry = MetricRegistry::new();
        registry.register(JobKey(1), Role::Consumer, full_queue(4));
        let estimator = ProportionEstimator::new(&config);

        let mut ctx = CycleContext::new();
        let mut last = 0;
        for cycle in 1..=20 {
            ctx.begin(cycle as f64 * 0.01, 0.01);
            sense(&registry, &mut jobs, false, &mut ctx);
            classify(&config, &mut jobs, &mut ctx);
            estimate(&config, &estimator, &mut jobs, &mut ctx);
            last = ctx.records[0].desired.ppt();
        }
        assert!(
            last > 100,
            "persistent +1/2 pressure must grow demand, got {last}"
        );
        assert!(ctx.records[0].pressure_q > 0.0);
    }

    #[test]
    fn estimate_reclaims_when_usage_is_low() {
        let (mut jobs, config) = table_with(&[(1, JobSpec::miscellaneous())]);
        let registry = MetricRegistry::new();
        let estimator = ProportionEstimator::new(&config);
        let slot = jobs.slot_of(JobId(1)).unwrap();
        jobs.get_mut(slot).unwrap().granted = Proportion::from_ppt(500);
        jobs.get_mut(slot).unwrap().usage = UsageSnapshot { usage_ratio: 0.1 };

        let mut ctx = CycleContext::new();
        ctx.begin(0.01, 0.01);
        sense(&registry, &mut jobs, false, &mut ctx);
        classify(&config, &mut jobs, &mut ctx);
        estimate(&config, &estimator, &mut jobs, &mut ctx);

        let desired = ctx.records[0].desired.ppt();
        assert_eq!(
            desired,
            500 - config.reclaim_ppt,
            "reclamation takes the −C branch"
        );
    }

    #[test]
    fn allocate_passes_through_when_capacity_suffices() {
        let (mut jobs, config) = table_with(&[(1, JobSpec::miscellaneous())]);
        let registry = MetricRegistry::new();
        let estimator = ProportionEstimator::new(&config);
        let mut ctx = CycleContext::new();
        ctx.begin(0.01, 0.01);
        sense(&registry, &mut jobs, false, &mut ctx);
        classify(&config, &mut jobs, &mut ctx);
        estimate(&config, &estimator, &mut jobs, &mut ctx);
        allocate(&config, &mut ctx);
        assert!(!ctx.was_squished());
        assert_eq!(ctx.granted.len(), 1);
        assert_eq!(ctx.granted[0], ctx.records[0].desired);
    }

    #[test]
    fn allocate_squishes_on_overload_and_respects_the_threshold() {
        let (mut jobs, config) =
            table_with(&[(1, JobSpec::miscellaneous()), (2, JobSpec::miscellaneous())]);
        let registry = MetricRegistry::new();
        let mut ctx = CycleContext::new();
        ctx.begin(0.01, 0.01);
        sense(&registry, &mut jobs, false, &mut ctx);
        classify(&config, &mut jobs, &mut ctx);
        // Force each job to want the whole machine: skip Estimate and plant
        // desires directly, which is exactly what stage isolation allows.
        for &i in &ctx.adaptive.clone() {
            ctx.records[i as usize].desired = Proportion::from_ppt(1000);
        }
        allocate(&config, &mut ctx);
        assert!(ctx.was_squished());
        let total: u32 = ctx.granted.iter().map(|p| p.ppt()).sum();
        assert!(total <= config.overload_threshold_ppt);
        assert!(ctx.granted.iter().all(|p| p.ppt() >= 1), "no starvation");
    }

    #[test]
    fn place_is_a_noop_on_a_single_cpu() {
        let (mut jobs, config) =
            table_with(&[(1, JobSpec::miscellaneous()), (2, JobSpec::miscellaneous())]);
        let registry = MetricRegistry::new();
        let estimator = ProportionEstimator::new(&config);
        let mut ctx = CycleContext::new();
        ctx.begin(0.01, 0.01);
        sense(&registry, &mut jobs, false, &mut ctx);
        classify(&config, &mut jobs, &mut ctx);
        estimate(&config, &estimator, &mut jobs, &mut ctx);
        allocate(&config, &mut ctx);
        let grants_before = ctx.granted.clone();
        place(&config, &mut jobs, &mut ctx);
        assert_eq!(ctx.granted, grants_before, "grants untouched");
        assert!(ctx.migrations.is_empty());
        assert_eq!(ctx.cpu_load.len(), 1);
        assert!(ctx.records.iter().all(|r| r.cpu == CpuId::ZERO));
    }

    #[test]
    fn place_migrates_one_job_when_imbalance_exceeds_the_bound() {
        use rrs_scheduler::Proportion;
        let config = ControllerConfig::default().with_cpus(2);
        let mut jobs = JobTable::new();
        for id in 1..=3 {
            let entry = JobEntry::new(JobSpec::miscellaneous(), Importance::NORMAL, &config);
            jobs.insert(JobId(id), entry).unwrap();
        }
        // All three jobs crowded onto cpu0 with meaningful grants.
        for (_, _, e) in jobs.iter_mut() {
            e.cpu = CpuId(0);
        }
        let registry = MetricRegistry::new();
        let mut ctx = CycleContext::new();
        ctx.begin(0.01, 0.01);
        sense(&registry, &mut jobs, false, &mut ctx);
        classify(&config, &mut jobs, &mut ctx);
        // Plant grants directly (stage isolation): 300 ‰ each on cpu0.
        ctx.granted.clear();
        for _ in 0..ctx.adaptive.len() {
            ctx.granted.push(Proportion::from_ppt(300));
        }
        place(&config, &mut jobs, &mut ctx);
        // Gap was 900 > 200: exactly one job moved to cpu1.
        assert_eq!(ctx.migrations.len(), 1);
        let (job, from, to) = ctx.migrations[0];
        assert_eq!((from, to), (CpuId(0), CpuId(1)));
        assert_eq!(ctx.cpu_load, vec![600, 300]);
        let moved = jobs.get_by_id(job).unwrap();
        assert_eq!(moved.cpu, CpuId(1));
        // A second cycle with the same grants is already balanced enough:
        // gap 300 > 200 but moving a 300 ‰ job cannot shrink it.
        ctx.begin(0.02, 0.01);
        sense(&registry, &mut jobs, false, &mut ctx);
        classify(&config, &mut jobs, &mut ctx);
        ctx.granted.clear();
        for _ in 0..ctx.adaptive.len() {
            ctx.granted.push(Proportion::from_ppt(300));
        }
        place(&config, &mut jobs, &mut ctx);
        assert!(ctx.migrations.is_empty(), "no oscillation");
    }

    #[test]
    fn place_pulls_jobs_back_onto_a_shrunken_machine() {
        let config = ControllerConfig::default(); // one CPU
        let mut jobs = JobTable::new();
        let entry = JobEntry::new(JobSpec::miscellaneous(), Importance::NORMAL, &config);
        jobs.insert(JobId(1), entry).unwrap();
        jobs.get_by_id_mut(JobId(1)).unwrap().cpu = CpuId(5);
        let registry = MetricRegistry::new();
        let mut ctx = CycleContext::new();
        ctx.begin(0.01, 0.01);
        sense(&registry, &mut jobs, false, &mut ctx);
        classify(&config, &mut jobs, &mut ctx);
        allocate(&config, &mut ctx);
        place(&config, &mut jobs, &mut ctx);
        assert_eq!(jobs.get_by_id(JobId(1)).unwrap().cpu, CpuId(0));
        assert_eq!(ctx.records[0].cpu, CpuId(0));
    }

    #[test]
    fn place_never_migrates_fixed_reservations() {
        use rrs_scheduler::{Period, Proportion};
        let config = ControllerConfig::default().with_cpus(2);
        let mut jobs = JobTable::new();
        let spec = JobSpec::real_time(Proportion::from_ppt(600), Period::from_millis(10));
        let entry = JobEntry::new(spec, Importance::NORMAL, &config);
        jobs.insert(JobId(1), entry).unwrap();
        let registry = MetricRegistry::new();
        let mut ctx = CycleContext::new();
        ctx.begin(0.01, 0.01);
        sense(&registry, &mut jobs, false, &mut ctx);
        classify(&config, &mut jobs, &mut ctx);
        allocate(&config, &mut ctx);
        place(&config, &mut jobs, &mut ctx);
        // 600 vs 0 exceeds the bound, but a real-time job stays put.
        assert_eq!(ctx.cpu_load, vec![600, 0]);
        assert!(ctx.migrations.is_empty());
        assert_eq!(jobs.get_by_id(JobId(1)).unwrap().cpu, CpuId(0));
    }

    #[test]
    fn actuate_commits_grants_and_raises_quality_exceptions() {
        use rrs_scheduler::{Period, Proportion};
        let config = ControllerConfig {
            overload_threshold_ppt: 200,
            ..ControllerConfig::default()
        };
        let mut jobs = JobTable::new();
        jobs.insert(
            JobId(1),
            JobEntry::new(
                JobSpec::real_time(Proportion::from_ppt(150), Period::from_millis(10)),
                Importance::NORMAL,
                &config,
            ),
        )
        .unwrap();
        jobs.insert(
            JobId(2),
            JobEntry::new(JobSpec::miscellaneous(), Importance::NORMAL, &config),
        )
        .unwrap();
        let registry = MetricRegistry::new();
        let mut ctx = CycleContext::new();
        ctx.begin(0.5, 0.01);
        sense(&registry, &mut jobs, false, &mut ctx);
        classify(&config, &mut jobs, &mut ctx);
        // Plant an unmeetable demand with pressure above the exception bar.
        let i = ctx.adaptive[0] as usize;
        ctx.records[i].desired = Proportion::from_ppt(800);
        ctx.records[i].pressure_q = 1.0;
        allocate(&config, &mut ctx);

        let mut out = ControlOutput::default();
        actuate(&config, &mut jobs, &ctx, &mut out);

        assert_eq!(out.actuations.len(), 2);
        let rt = out.actuation_for(JobId(1)).unwrap();
        assert_eq!(rt.reservation.proportion.ppt(), 150);
        let misc = out.actuation_for(JobId(2)).unwrap();
        assert!(misc.reservation.proportion.ppt() < 800);
        assert_eq!(out.quality_exceptions().len(), 1);
        assert_eq!(out.quality_exceptions()[0].job, JobId(2));
        assert_eq!(out.quality_exceptions()[0].time, 0.5);
        // Squish event precedes quality exceptions.
        assert!(matches!(out.events[0], ControllerEvent::Squished { .. }));
        // Grants were committed to the table.
        let misc_slot = jobs.slot_of(JobId(2)).unwrap();
        assert_eq!(
            jobs.get(misc_slot).unwrap().granted,
            misc.reservation.proportion
        );
        assert_eq!(
            out.total_granted_ppt,
            150 + misc.reservation.proportion.ppt()
        );
    }

    #[test]
    fn context_buffers_are_reused_across_cycles() {
        let (mut jobs, config) = table_with(&[
            (1, JobSpec::miscellaneous()),
            (2, JobSpec::miscellaneous()),
            (3, JobSpec::miscellaneous()),
        ]);
        let registry = MetricRegistry::new();
        let estimator = ProportionEstimator::new(&config);
        let mut ctx = CycleContext::new();
        let mut out = ControlOutput::default();
        let run = |ctx: &mut CycleContext, out: &mut ControlOutput, jobs: &mut JobTable, t: f64| {
            ctx.begin(t, 0.01);
            sense(&registry, jobs, false, ctx);
            classify(&config, jobs, ctx);
            estimate(&config, &estimator, jobs, ctx);
            allocate(&config, ctx);
            actuate(&config, jobs, ctx, out);
        };
        run(&mut ctx, &mut out, &mut jobs, 0.01);
        let caps = (
            ctx.records.capacity(),
            ctx.adaptive.capacity(),
            out.actuations.capacity(),
        );
        for i in 2..100 {
            run(&mut ctx, &mut out, &mut jobs, i as f64 * 0.01);
        }
        assert_eq!(
            caps,
            (
                ctx.records.capacity(),
                ctx.adaptive.capacity(),
                out.actuations.capacity()
            ),
            "scratch capacity must stabilise after the first cycle"
        );
        assert_eq!(out.actuations.len(), 3);
    }
}
