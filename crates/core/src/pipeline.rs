//! The staged control-plane pipeline.
//!
//! One controller period flows through five explicit stages, each a named
//! function over a shared, reusable [`CycleContext`]:
//!
//! 1. [`sense`] — sample every job's progress metrics (fill levels, signed
//!    pressure) and dispatcher usage feedback into dense cycle records;
//! 2. [`classify`] — derive each job's effective Figure 2 class from its
//!    spec plus the sensed metric visibility, and fix reserved jobs'
//!    proportions and periods;
//! 3. [`estimate`] — run the per-job PID pressure function (Figure 3) and
//!    the proportion estimator (Figure 4) for adaptive jobs, including the
//!    usage-based reclamation branch and optional period estimation;
//! 4. [`allocate`] — detect overload against the admission threshold and
//!    squish adaptive allocations by the configured policy (§3.3);
//! 5. [`actuate`] — commit grants to the job table and emit the
//!    reservation actuations, squish events and quality exceptions.
//!
//! Every buffer the stages touch lives in the [`CycleContext`] (or the
//! reused [`crate::ControlOutput`]), so a warmed-up steady-state cycle
//! performs **no heap allocation** and runs in `O(jobs + attachments)`
//! with cache-friendly linear scans over the slot table.  The stages only
//! communicate through the context, which keeps them independently
//! testable and swappable.

use crate::config::ControllerConfig;
use crate::controller::{Actuation, ControlOutput, JobId, UsageSnapshot};
use crate::estimator::ProportionEstimator;
use crate::events::{ControllerEvent, QualityException};
use crate::period::PeriodEstimator;
use crate::pressure::PressureEstimator;
use crate::slot::{JobSlot, SlotTable};
use crate::squish::{squish_into, Importance, SquishRequest, SquishScratch};
use crate::taxonomy::{JobClass, JobSpec};
use rrs_queue::MetricRegistry;
use rrs_scheduler::{Period, Proportion, Reservation};

/// Per-job controller state: the payload of the controller's slot table.
#[derive(Debug)]
pub(crate) struct JobEntry {
    pub(crate) spec: JobSpec,
    pub(crate) importance: Importance,
    pub(crate) pressure: PressureEstimator,
    pub(crate) period_estimator: PeriodEstimator,
    pub(crate) period: Period,
    pub(crate) granted: Proportion,
    /// Usage feedback recorded since the last cycle; reset to the default
    /// (full usage) when the cycle consumes it.
    pub(crate) usage: UsageSnapshot,
}

/// The controller's dense per-job working state for one cycle.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CycleRecord {
    pub(crate) slot: JobSlot,
    pub(crate) job: JobId,
    /// Sense: `true` if the registry exposes a progress metric for the job.
    pub(crate) has_metric: bool,
    /// Sense: summed signed pressure `Σ_i R_{t,i}·F_{t,i}`, if sensed.
    pub(crate) summed_pressure: Option<f64>,
    /// Sense: fraction of the last allocation the job actually used.
    pub(crate) usage_ratio: f64,
    /// Sense: this job's span inside [`CycleContext::fills`].
    fills_start: u32,
    fills_len: u32,
    /// Classify: the effective class this cycle.
    pub(crate) class: JobClass,
    /// Classify: importance weight (copied out so Allocate needs no table).
    pub(crate) importance: Importance,
    /// Estimate: cumulative progress pressure `Q_t` (adaptive jobs).
    pub(crate) pressure_q: f64,
    /// Classify (fixed) / Estimate (adaptive): desired proportion.
    pub(crate) desired: Proportion,
    /// Classify (fixed) / Estimate (adaptive): period to actuate.
    pub(crate) period: Period,
}

/// Reusable scratch shared by the pipeline stages.
///
/// All vectors are cleared — never shrunk — between cycles, so their
/// capacity warms up to the live job count and stays there.
#[derive(Debug, Default)]
pub struct CycleContext {
    /// Controller time at the start of the cycle, in seconds.
    now_s: f64,
    /// Seconds elapsed since the previous cycle.
    dt: f64,
    pub(crate) records: Vec<CycleRecord>,
    /// Flat pool of fill-level samples; records index into it.
    pub(crate) fills: Vec<f64>,
    /// Indices into `records` of the squishable (adaptive) jobs.
    pub(crate) adaptive: Vec<u32>,
    pub(crate) requests: Vec<SquishRequest>,
    pub(crate) granted: Vec<Proportion>,
    squish_scratch: SquishScratch,
    pub(crate) fixed_total_ppt: u32,
    pub(crate) available_ppt: u32,
    pub(crate) desired_total_ppt: u64,
    pub(crate) squished: bool,
}

impl CycleContext {
    /// Creates an empty context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Begins a cycle: stores the clock and resets per-cycle accumulators.
    pub(crate) fn begin(&mut self, now_s: f64, dt: f64) {
        self.now_s = now_s;
        self.dt = dt;
        self.records.clear();
        self.fills.clear();
        self.adaptive.clear();
        self.requests.clear();
        self.granted.clear();
        self.fixed_total_ppt = 0;
        self.available_ppt = 0;
        self.desired_total_ppt = 0;
        self.squished = false;
    }

    /// Controller time at the start of the current cycle, in seconds.
    pub fn now_s(&self) -> f64 {
        self.now_s
    }

    /// Seconds elapsed since the previous cycle.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Whether the Allocate stage squished allocations this cycle.
    pub fn was_squished(&self) -> bool {
        self.squished
    }

    /// Number of jobs the current cycle visited.
    pub fn jobs_visited(&self) -> usize {
        self.records.len()
    }

    /// The fill samples sensed for one record.
    fn fills_of(&self, r: &CycleRecord) -> &[f64] {
        let start = r.fills_start as usize;
        &self.fills[start..start + r.fills_len as usize]
    }
}

pub(crate) type JobTable = SlotTable<JobId, JobEntry>;

/// Stage 1 — **Sense**: samples the registry's progress metrics and the
/// per-job usage feedback into dense [`CycleRecord`]s.
///
/// Each attachment is sampled exactly once; the sample feeds both the
/// summed signed pressure (Figure 3) and, when period estimation is on,
/// the fill pool the Estimate stage replays into the period estimator.
/// Consumes (and resets) the usage snapshots recorded since the last
/// cycle.
pub(crate) fn sense(
    registry: &MetricRegistry,
    jobs: &mut JobTable,
    collect_fills: bool,
    ctx: &mut CycleContext,
) {
    for (slot, job, entry) in jobs.iter_mut() {
        let fills_start = ctx.fills.len() as u32;
        let mut any = false;
        let mut sum = 0.0;
        let fills = &mut ctx.fills;
        registry.for_each_attachment(job.key(), |a| {
            any = true;
            let sample = a.sample();
            sum += a.role.sign() * sample.centered();
            if collect_fills {
                fills.push(sample.fraction());
            }
        });
        let usage_ratio = entry.usage.usage_ratio;
        entry.usage = UsageSnapshot::default();
        ctx.records.push(CycleRecord {
            slot,
            job,
            has_metric: any,
            summed_pressure: if any { Some(sum) } else { None },
            usage_ratio,
            fills_start,
            fills_len: ctx.fills.len() as u32 - fills_start,
            // Placeholders; later stages overwrite these.
            class: JobClass::Miscellaneous,
            importance: entry.importance,
            pressure_q: 0.0,
            desired: Proportion::ZERO,
            period: entry.period,
        });
    }
}

/// Stage 2 — **Classify**: derives each job's effective Figure 2 class
/// from its spec plus the sensed metric visibility.
///
/// Attaching a queue at run time promotes a miscellaneous job to
/// real-rate, and vice versa.  Real-time and aperiodic real-time jobs get
/// their reserved proportion and period fixed here and contribute to the
/// cycle's fixed total; squishable jobs are queued for the Estimate stage.
pub(crate) fn classify(config: &ControllerConfig, jobs: &mut JobTable, ctx: &mut CycleContext) {
    for (i, record) in ctx.records.iter_mut().enumerate() {
        let entry = jobs.get_mut(record.slot).expect("record slot is live");
        let spec = entry.spec.with_progress_metric(record.has_metric);
        let class = spec.classify();
        record.class = class;
        match class {
            JobClass::RealTime => {
                let p = spec.proportion.expect("real-time has proportion");
                let t = spec.period.expect("real-time has period");
                entry.period = t;
                record.desired = p;
                record.period = t;
                ctx.fixed_total_ppt += p.ppt();
            }
            JobClass::AperiodicRealTime => {
                let p = spec.proportion.expect("aperiodic has proportion");
                entry.period = config.default_period;
                record.desired = p;
                record.period = entry.period;
                ctx.fixed_total_ppt += p.ppt();
            }
            JobClass::RealRate | JobClass::Miscellaneous => {
                ctx.adaptive.push(i as u32);
            }
        }
    }
}

/// Stage 3 — **Estimate**: turns sensed pressure into desired allocations
/// for the adaptive (real-rate and miscellaneous) jobs.
///
/// Runs the per-job PID control function over the summed pressure
/// (Figure 3), then the proportion estimator `P'_t = k·Q_t` with the
/// usage-based "too generous" reclamation branch (Figure 4).  When a
/// reclamation fires, the PID state is damped so the reclaimed allocation
/// is not immediately re-requested.  Optionally replays the sensed fill
/// levels into the period estimator (§3.3's heuristic, off by default as
/// in the paper).
pub(crate) fn estimate(
    config: &ControllerConfig,
    estimator: &ProportionEstimator,
    jobs: &mut JobTable,
    ctx: &mut CycleContext,
) {
    let dt = ctx.dt;
    for idx in 0..ctx.adaptive.len() {
        let rec_idx = ctx.adaptive[idx] as usize;
        let mut record = ctx.records[rec_idx];
        let entry = jobs.get_mut(record.slot).expect("record slot is live");

        let summed = match record.class {
            // Real-rate: drive from observed progress.  Miscellaneous:
            // constant positive pressure — keep asking for more CPU until
            // satisfied or squished.
            JobClass::RealRate => record.summed_pressure.unwrap_or(config.misc_pressure),
            _ => config.misc_pressure,
        };
        let q = entry.pressure.update(summed, dt);
        let outcome = estimator.estimate(entry.granted, q, record.usage_ratio);
        if outcome.reclaimed {
            // Damp the PID state so the reclaimed allocation is not
            // immediately re-requested.
            let target = if entry.granted.ppt() > 0 {
                outcome.desired.ppt() as f64 / entry.granted.ppt() as f64
            } else {
                0.0
            };
            entry.pressure.scale_state(target.clamp(0.0, 1.0));
        }

        if config.period_estimation && record.class == JobClass::RealRate {
            for &fill in ctx.fills_of(&record) {
                entry.period_estimator.observe_fill(fill);
            }
            entry.period = entry
                .period_estimator
                .end_period(entry.granted, entry.period);
        } else if entry.spec.period.is_none() {
            entry.period = config.default_period;
        }

        record.pressure_q = q;
        record.desired = outcome.desired;
        record.period = entry.period;
        ctx.records[rec_idx] = record;
    }
}

/// Stage 4 — **Allocate**: overload detection and squishing (§3.3,
/// "Responding to Overload").
///
/// Sums the adaptive jobs' desired proportions against the capacity left
/// under the overload threshold by the fixed reservations.  Under
/// overload, applies the configured squish policy (fair share or
/// importance-weighted water-fill); otherwise grants every desire
/// unchanged.  Grants land in the context, aligned with the adaptive
/// index list.
pub(crate) fn allocate(config: &ControllerConfig, ctx: &mut CycleContext) {
    ctx.available_ppt = config
        .overload_threshold_ppt
        .saturating_sub(ctx.fixed_total_ppt);
    ctx.desired_total_ppt = ctx
        .adaptive
        .iter()
        .map(|&i| ctx.records[i as usize].desired.ppt() as u64)
        .sum();

    if ctx.desired_total_ppt > ctx.available_ppt as u64 {
        ctx.squished = true;
        ctx.requests.clear();
        for &i in &ctx.adaptive {
            let r = &ctx.records[i as usize];
            ctx.requests.push(SquishRequest {
                desired: r.desired,
                importance: r.importance,
                floor: config.min_proportion,
            });
        }
        squish_into(
            config.squish_policy,
            &ctx.requests,
            Proportion::from_ppt(ctx.available_ppt),
            &mut ctx.squish_scratch,
            &mut ctx.granted,
        );
    } else {
        ctx.granted.clear();
        for &i in &ctx.adaptive {
            ctx.granted.push(ctx.records[i as usize].desired);
        }
    }
}

/// Stage 5 — **Actuate**: commits grants to the job table and writes the
/// cycle's outputs — reservation actuations, the squish event, and
/// quality exceptions for adaptive jobs whose demand could not be met —
/// into the reusable [`ControlOutput`].
pub(crate) fn actuate(
    config: &ControllerConfig,
    jobs: &mut JobTable,
    ctx: &CycleContext,
    out: &mut ControlOutput,
) {
    out.actuations.clear();
    out.events.clear();
    out.total_granted_ppt = 0;

    if ctx.squished {
        out.events.push(ControllerEvent::Squished {
            desired_total_ppt: ctx.desired_total_ppt,
            available_ppt: ctx.available_ppt,
        });
    }

    // Fixed reservations first, then adaptive grants, mirroring the order
    // in which they were decided.
    for record in &ctx.records {
        if record.class.is_squishable() {
            continue;
        }
        let entry = jobs.get_mut(record.slot).expect("record slot is live");
        entry.granted = record.desired;
        out.total_granted_ppt += record.desired.ppt();
        out.actuations.push(Actuation {
            slot: record.slot,
            job: record.job,
            reservation: Reservation::new(record.desired, record.period),
        });
    }

    for (&i, &grant) in ctx.adaptive.iter().zip(ctx.granted.iter()) {
        let record = &ctx.records[i as usize];
        let entry = jobs.get_mut(record.slot).expect("record slot is live");
        entry.granted = grant;
        out.total_granted_ppt += grant.ppt();
        if grant.ppt() < record.desired.ppt()
            && record.pressure_q.abs() >= config.quality_exception_pressure
        {
            out.events.push(ControllerEvent::Quality(QualityException {
                job: record.job,
                desired: record.desired,
                granted: grant,
                pressure: record.pressure_q,
                time: ctx.now_s,
            }));
        }
        out.actuations.push(Actuation {
            slot: record.slot,
            job: record.job,
            reservation: Reservation::new(grant, record.period),
        });
    }

    out.cost_us = config.cost_model.invocation_cost_us(jobs.len());
}

impl JobEntry {
    pub(crate) fn new(spec: JobSpec, importance: Importance, config: &ControllerConfig) -> Self {
        let class = spec.classify();
        let period = spec.period.unwrap_or(config.default_period);
        let initial = match class {
            JobClass::RealTime | JobClass::AperiodicRealTime => {
                spec.proportion.unwrap_or(config.min_proportion)
            }
            _ => config.min_proportion,
        };
        Self {
            spec,
            importance,
            pressure: PressureEstimator::new(config.pid),
            period_estimator: PeriodEstimator::with_defaults(),
            period,
            granted: initial,
            usage: UsageSnapshot::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrs_queue::{BoundedBuffer, JobKey, Role};
    use std::sync::Arc;

    fn table_with(specs: &[(u64, JobSpec)]) -> (JobTable, ControllerConfig) {
        let config = ControllerConfig::default();
        let mut table = JobTable::new();
        for &(id, spec) in specs {
            let entry = JobEntry::new(spec, Importance::NORMAL, &config);
            table.insert(JobId(id), entry).expect("unique test ids");
        }
        (table, config)
    }

    fn full_queue(capacity: usize) -> Arc<BoundedBuffer<u8>> {
        let q = Arc::new(BoundedBuffer::new("q", capacity));
        for i in 0..capacity {
            q.try_push(i as u8).unwrap();
        }
        q
    }

    fn run_sense(registry: &MetricRegistry, jobs: &mut JobTable, ctx: &mut CycleContext) {
        ctx.begin(0.01, 0.01);
        sense(registry, jobs, true, ctx);
    }

    #[test]
    fn sense_samples_pressure_fills_and_usage() {
        let (mut jobs, _config) = table_with(&[(1, JobSpec::real_rate())]);
        let registry = MetricRegistry::new();
        registry.register(JobKey(1), Role::Consumer, full_queue(4));
        let slot = jobs.slot_of(JobId(1)).unwrap();
        jobs.get_mut(slot).unwrap().usage = UsageSnapshot { usage_ratio: 0.25 };

        let mut ctx = CycleContext::new();
        run_sense(&registry, &mut jobs, &mut ctx);

        assert_eq!(ctx.records.len(), 1);
        let r = &ctx.records[0];
        assert!(r.has_metric);
        // Consumer of a full queue: summed signed pressure +1/2.
        assert_eq!(r.summed_pressure, Some(0.5));
        assert_eq!(r.usage_ratio, 0.25);
        assert_eq!(ctx.fills_of(r), &[1.0]);
        // The usage snapshot is consumed: the next cycle defaults to 1.0.
        assert_eq!(jobs.get(slot).unwrap().usage, UsageSnapshot::default());
    }

    #[test]
    fn sense_reports_no_metric_without_attachments() {
        let (mut jobs, _config) = table_with(&[(1, JobSpec::miscellaneous())]);
        let registry = MetricRegistry::new();
        let mut ctx = CycleContext::new();
        run_sense(&registry, &mut jobs, &mut ctx);
        assert!(!ctx.records[0].has_metric);
        assert_eq!(ctx.records[0].summed_pressure, None);
        assert!(ctx.fills.is_empty());
    }

    #[test]
    fn classify_splits_fixed_from_adaptive_and_fixes_periods() {
        use rrs_scheduler::{Period, Proportion};
        let (mut jobs, config) = table_with(&[
            (
                1,
                JobSpec::real_time(Proportion::from_ppt(300), Period::from_millis(20)),
            ),
            (2, JobSpec::aperiodic_real_time(Proportion::from_ppt(100))),
            (3, JobSpec::miscellaneous()),
        ]);
        let registry = MetricRegistry::new();
        // Job 4 registered as miscellaneous but with a visible metric: the
        // classify stage must promote it to real-rate.
        let entry = JobEntry::new(JobSpec::miscellaneous(), Importance::NORMAL, &config);
        jobs.insert(JobId(4), entry).unwrap();
        registry.register(JobKey(4), Role::Consumer, full_queue(2));

        let mut ctx = CycleContext::new();
        run_sense(&registry, &mut jobs, &mut ctx);
        classify(&config, &mut jobs, &mut ctx);

        assert_eq!(ctx.records[0].class, JobClass::RealTime);
        assert_eq!(ctx.records[0].desired.ppt(), 300);
        assert_eq!(ctx.records[0].period, Period::from_millis(20));
        assert_eq!(ctx.records[1].class, JobClass::AperiodicRealTime);
        assert_eq!(ctx.records[1].period, config.default_period);
        assert_eq!(ctx.records[2].class, JobClass::Miscellaneous);
        assert_eq!(ctx.records[3].class, JobClass::RealRate);
        assert_eq!(ctx.fixed_total_ppt, 400);
        assert_eq!(ctx.adaptive, vec![2, 3]);
    }

    #[test]
    fn estimate_grows_desire_under_positive_pressure() {
        let (mut jobs, config) = table_with(&[(1, JobSpec::real_rate())]);
        let registry = MetricRegistry::new();
        registry.register(JobKey(1), Role::Consumer, full_queue(4));
        let estimator = ProportionEstimator::new(&config);

        let mut ctx = CycleContext::new();
        let mut last = 0;
        for cycle in 1..=20 {
            ctx.begin(cycle as f64 * 0.01, 0.01);
            sense(&registry, &mut jobs, false, &mut ctx);
            classify(&config, &mut jobs, &mut ctx);
            estimate(&config, &estimator, &mut jobs, &mut ctx);
            last = ctx.records[0].desired.ppt();
        }
        assert!(
            last > 100,
            "persistent +1/2 pressure must grow demand, got {last}"
        );
        assert!(ctx.records[0].pressure_q > 0.0);
    }

    #[test]
    fn estimate_reclaims_when_usage_is_low() {
        let (mut jobs, config) = table_with(&[(1, JobSpec::miscellaneous())]);
        let registry = MetricRegistry::new();
        let estimator = ProportionEstimator::new(&config);
        let slot = jobs.slot_of(JobId(1)).unwrap();
        jobs.get_mut(slot).unwrap().granted = Proportion::from_ppt(500);
        jobs.get_mut(slot).unwrap().usage = UsageSnapshot { usage_ratio: 0.1 };

        let mut ctx = CycleContext::new();
        ctx.begin(0.01, 0.01);
        sense(&registry, &mut jobs, false, &mut ctx);
        classify(&config, &mut jobs, &mut ctx);
        estimate(&config, &estimator, &mut jobs, &mut ctx);

        let desired = ctx.records[0].desired.ppt();
        assert_eq!(
            desired,
            500 - config.reclaim_ppt,
            "reclamation takes the −C branch"
        );
    }

    #[test]
    fn allocate_passes_through_when_capacity_suffices() {
        let (mut jobs, config) = table_with(&[(1, JobSpec::miscellaneous())]);
        let registry = MetricRegistry::new();
        let estimator = ProportionEstimator::new(&config);
        let mut ctx = CycleContext::new();
        ctx.begin(0.01, 0.01);
        sense(&registry, &mut jobs, false, &mut ctx);
        classify(&config, &mut jobs, &mut ctx);
        estimate(&config, &estimator, &mut jobs, &mut ctx);
        allocate(&config, &mut ctx);
        assert!(!ctx.was_squished());
        assert_eq!(ctx.granted.len(), 1);
        assert_eq!(ctx.granted[0], ctx.records[0].desired);
    }

    #[test]
    fn allocate_squishes_on_overload_and_respects_the_threshold() {
        let (mut jobs, config) =
            table_with(&[(1, JobSpec::miscellaneous()), (2, JobSpec::miscellaneous())]);
        let registry = MetricRegistry::new();
        let mut ctx = CycleContext::new();
        ctx.begin(0.01, 0.01);
        sense(&registry, &mut jobs, false, &mut ctx);
        classify(&config, &mut jobs, &mut ctx);
        // Force each job to want the whole machine: skip Estimate and plant
        // desires directly, which is exactly what stage isolation allows.
        for &i in &ctx.adaptive.clone() {
            ctx.records[i as usize].desired = Proportion::from_ppt(1000);
        }
        allocate(&config, &mut ctx);
        assert!(ctx.was_squished());
        let total: u32 = ctx.granted.iter().map(|p| p.ppt()).sum();
        assert!(total <= config.overload_threshold_ppt);
        assert!(ctx.granted.iter().all(|p| p.ppt() >= 1), "no starvation");
    }

    #[test]
    fn actuate_commits_grants_and_raises_quality_exceptions() {
        use rrs_scheduler::{Period, Proportion};
        let config = ControllerConfig {
            overload_threshold_ppt: 200,
            ..ControllerConfig::default()
        };
        let mut jobs = JobTable::new();
        jobs.insert(
            JobId(1),
            JobEntry::new(
                JobSpec::real_time(Proportion::from_ppt(150), Period::from_millis(10)),
                Importance::NORMAL,
                &config,
            ),
        )
        .unwrap();
        jobs.insert(
            JobId(2),
            JobEntry::new(JobSpec::miscellaneous(), Importance::NORMAL, &config),
        )
        .unwrap();
        let registry = MetricRegistry::new();
        let mut ctx = CycleContext::new();
        ctx.begin(0.5, 0.01);
        sense(&registry, &mut jobs, false, &mut ctx);
        classify(&config, &mut jobs, &mut ctx);
        // Plant an unmeetable demand with pressure above the exception bar.
        let i = ctx.adaptive[0] as usize;
        ctx.records[i].desired = Proportion::from_ppt(800);
        ctx.records[i].pressure_q = 1.0;
        allocate(&config, &mut ctx);

        let mut out = ControlOutput::default();
        actuate(&config, &mut jobs, &ctx, &mut out);

        assert_eq!(out.actuations.len(), 2);
        let rt = out.actuation_for(JobId(1)).unwrap();
        assert_eq!(rt.reservation.proportion.ppt(), 150);
        let misc = out.actuation_for(JobId(2)).unwrap();
        assert!(misc.reservation.proportion.ppt() < 800);
        assert_eq!(out.quality_exceptions().len(), 1);
        assert_eq!(out.quality_exceptions()[0].job, JobId(2));
        assert_eq!(out.quality_exceptions()[0].time, 0.5);
        // Squish event precedes quality exceptions.
        assert!(matches!(out.events[0], ControllerEvent::Squished { .. }));
        // Grants were committed to the table.
        let misc_slot = jobs.slot_of(JobId(2)).unwrap();
        assert_eq!(
            jobs.get(misc_slot).unwrap().granted,
            misc.reservation.proportion
        );
        assert_eq!(
            out.total_granted_ppt,
            150 + misc.reservation.proportion.ppt()
        );
    }

    #[test]
    fn context_buffers_are_reused_across_cycles() {
        let (mut jobs, config) = table_with(&[
            (1, JobSpec::miscellaneous()),
            (2, JobSpec::miscellaneous()),
            (3, JobSpec::miscellaneous()),
        ]);
        let registry = MetricRegistry::new();
        let estimator = ProportionEstimator::new(&config);
        let mut ctx = CycleContext::new();
        let mut out = ControlOutput::default();
        let run = |ctx: &mut CycleContext, out: &mut ControlOutput, jobs: &mut JobTable, t: f64| {
            ctx.begin(t, 0.01);
            sense(&registry, jobs, false, ctx);
            classify(&config, jobs, ctx);
            estimate(&config, &estimator, jobs, ctx);
            allocate(&config, ctx);
            actuate(&config, jobs, ctx, out);
        };
        run(&mut ctx, &mut out, &mut jobs, 0.01);
        let caps = (
            ctx.records.capacity(),
            ctx.adaptive.capacity(),
            out.actuations.capacity(),
        );
        for i in 2..100 {
            run(&mut ctx, &mut out, &mut jobs, i as f64 * 0.01);
        }
        assert_eq!(
            caps,
            (
                ctx.records.capacity(),
                ctx.adaptive.capacity(),
                out.actuations.capacity()
            ),
            "scratch capacity must stabilise after the first cycle"
        );
        assert_eq!(out.actuations.len(), 3);
    }
}
