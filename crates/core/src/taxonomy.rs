//! The thread-type taxonomy of Figure 2.
//!
//! | proportion specified | period specified | progress metric | class |
//! |---|---|---|---|
//! | yes | yes | n/a | real-time |
//! | yes | no  | n/a | aperiodic real-time |
//! | no  | —   | yes | real-rate |
//! | no  | —   | no  | miscellaneous |

use crate::squish::Importance;
use rrs_scheduler::{Period, Proportion, Reservation};
use serde::{Deserialize, Serialize};

/// The controller's classification of a job (Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobClass {
    /// Both proportion and period specified: a classic reservation.  The
    /// controller does not modify the allocation in practice.
    RealTime,
    /// Proportion specified but no period: the controller assigns the
    /// default period.
    AperiodicRealTime,
    /// No proportion or period, but a visible progress metric: the
    /// controller estimates both from progress.
    RealRate,
    /// No information at all: the controller applies a constant-pressure
    /// heuristic and the default period.
    Miscellaneous,
}

impl JobClass {
    /// Returns `true` if the controller may change this job's proportion.
    pub fn proportion_is_adaptive(self) -> bool {
        matches!(self, JobClass::RealRate | JobClass::Miscellaneous)
    }

    /// Returns `true` if this class's allocation may be squished under
    /// overload.  Real-time and aperiodic real-time jobs hold reservations
    /// and are instead subject to admission control.
    pub fn is_squishable(self) -> bool {
        matches!(self, JobClass::RealRate | JobClass::Miscellaneous)
    }
}

impl std::fmt::Display for JobClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            JobClass::RealTime => "real-time",
            JobClass::AperiodicRealTime => "aperiodic real-time",
            JobClass::RealRate => "real-rate",
            JobClass::Miscellaneous => "miscellaneous",
        };
        write!(f, "{s}")
    }
}

/// What a job told the system about itself when it registered.
///
/// The class is derived from which fields are present, exactly as in
/// Figure 2; the progress metric itself lives in the
/// [`rrs_queue::MetricRegistry`], so here only its existence matters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// The proportion the job asked for, if it specified one.
    pub proportion: Option<Proportion>,
    /// The period the job asked for, if it specified one.
    pub period: Option<Period>,
    /// Whether the job exposes at least one progress metric through the
    /// meta-interface.
    pub has_progress_metric: bool,
    /// The job's importance weight under weighted fair-share squishing.
    /// Defaults to [`Importance::NORMAL`]; set it with
    /// [`JobSpec::with_importance`] — the importance knob lives on the
    /// spec, not on per-backend `*_with_importance` method pairs.
    #[serde(default)]
    pub importance: Importance,
}

impl JobSpec {
    /// A real-time job: proportion and period both specified.
    pub fn real_time(proportion: Proportion, period: Period) -> Self {
        Self {
            proportion: Some(proportion),
            period: Some(period),
            has_progress_metric: false,
            importance: Importance::NORMAL,
        }
    }

    /// An aperiodic real-time job: proportion specified, period unknown.
    pub fn aperiodic_real_time(proportion: Proportion) -> Self {
        Self {
            proportion: Some(proportion),
            period: None,
            has_progress_metric: false,
            importance: Importance::NORMAL,
        }
    }

    /// A real-rate job: nothing specified but progress is observable.
    pub fn real_rate() -> Self {
        Self {
            proportion: None,
            period: None,
            has_progress_metric: true,
            importance: Importance::NORMAL,
        }
    }

    /// A miscellaneous job: nothing specified, nothing observable.
    pub fn miscellaneous() -> Self {
        Self {
            proportion: None,
            period: None,
            has_progress_metric: false,
            importance: Importance::NORMAL,
        }
    }

    /// Derives the job class per Figure 2.
    pub fn classify(&self) -> JobClass {
        match (self.proportion, self.period, self.has_progress_metric) {
            (Some(_), Some(_), _) => JobClass::RealTime,
            (Some(_), None, _) => JobClass::AperiodicRealTime,
            (None, _, true) => JobClass::RealRate,
            (None, _, false) => JobClass::Miscellaneous,
        }
    }

    /// The reservation a real-time job asked for, if fully specified.
    pub fn requested_reservation(&self) -> Option<Reservation> {
        match (self.proportion, self.period) {
            (Some(p), Some(t)) => Some(Reservation::new(p, t)),
            _ => None,
        }
    }

    /// Marks the spec as having (or not having) a registered progress
    /// metric; called when symbiotic interfaces are attached or detached at
    /// run time.
    pub fn with_progress_metric(mut self, has: bool) -> Self {
        self.has_progress_metric = has;
        self
    }

    /// Returns a copy with the given importance weight.
    ///
    /// Importance biases weighted fair-share squishing under overload; it
    /// never affects classification and can never starve another job.
    pub fn with_importance(mut self, importance: Importance) -> Self {
        self.importance = importance;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_2_classification() {
        let p = Proportion::from_ppt(100);
        let t = Period::from_millis(30);
        assert_eq!(JobSpec::real_time(p, t).classify(), JobClass::RealTime);
        assert_eq!(
            JobSpec::aperiodic_real_time(p).classify(),
            JobClass::AperiodicRealTime
        );
        assert_eq!(JobSpec::real_rate().classify(), JobClass::RealRate);
        assert_eq!(JobSpec::miscellaneous().classify(), JobClass::Miscellaneous);
    }

    #[test]
    fn progress_metric_is_irrelevant_when_proportion_specified() {
        // "N/A" rows of Figure 2: a real-time job with a metric is still
        // real-time.
        let p = Proportion::from_ppt(100);
        let t = Period::from_millis(30);
        let spec = JobSpec::real_time(p, t).with_progress_metric(true);
        assert_eq!(spec.classify(), JobClass::RealTime);
        let spec = JobSpec::aperiodic_real_time(p).with_progress_metric(true);
        assert_eq!(spec.classify(), JobClass::AperiodicRealTime);
    }

    #[test]
    fn metric_attachment_promotes_misc_to_real_rate() {
        let spec = JobSpec::miscellaneous().with_progress_metric(true);
        assert_eq!(spec.classify(), JobClass::RealRate);
    }

    #[test]
    fn requested_reservation_only_for_real_time() {
        let p = Proportion::from_ppt(100);
        let t = Period::from_millis(30);
        assert!(JobSpec::real_time(p, t).requested_reservation().is_some());
        assert!(JobSpec::aperiodic_real_time(p)
            .requested_reservation()
            .is_none());
        assert!(JobSpec::real_rate().requested_reservation().is_none());
    }

    #[test]
    fn squishability_and_adaptivity() {
        assert!(!JobClass::RealTime.is_squishable());
        assert!(!JobClass::AperiodicRealTime.is_squishable());
        assert!(JobClass::RealRate.is_squishable());
        assert!(JobClass::Miscellaneous.is_squishable());
        assert!(!JobClass::RealTime.proportion_is_adaptive());
        assert!(JobClass::RealRate.proportion_is_adaptive());
    }

    #[test]
    fn importance_lives_on_the_spec() {
        let spec = JobSpec::miscellaneous();
        assert_eq!(spec.importance, Importance::NORMAL);
        let weighted = spec.with_importance(Importance::new(4.0));
        assert_eq!(weighted.importance.weight(), 4.0);
        // Importance never changes the Figure 2 classification.
        assert_eq!(weighted.classify(), spec.classify());
        // Serde: specs written before the field existed deserialise to
        // the default importance.
        let legacy = r#"{"proportion":null,"period":null,"has_progress_metric":false}"#;
        let back: JobSpec = serde_json::from_str(legacy).unwrap();
        assert_eq!(back.importance, Importance::NORMAL);
    }

    #[test]
    fn display_names() {
        assert_eq!(JobClass::RealTime.to_string(), "real-time");
        assert_eq!(JobClass::RealRate.to_string(), "real-rate");
        assert_eq!(JobClass::Miscellaneous.to_string(), "miscellaneous");
        assert_eq!(
            JobClass::AperiodicRealTime.to_string(),
            "aperiodic real-time"
        );
    }
}
