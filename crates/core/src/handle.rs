//! The job handle shared by every host backend.
//!
//! Historically the simulator and the wall-clock executor each defined
//! their own structurally identical handle type, which forked the front
//! door: workloads written against one backend could not hand their
//! handles to the other.  The single [`JobHandle`] lives here, one layer
//! below both backends, so a handle means the same thing everywhere: the
//! controller-side id, the scheduler-side thread id and the controller's
//! dense slot.

use crate::controller::JobId;
use crate::slot::JobSlot;
use rrs_scheduler::ThreadId;

/// Handle to a job registered with a host (simulator or wall-clock
/// executor).
///
/// Handles are small `Copy` values; holding one does not keep the job
/// alive.  The `slot` field is the controller's dense slot, shared by
/// every layer, so control-plane queries are `O(1)` without id lookups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobHandle {
    /// The controller-side job id.
    pub job: JobId,
    /// The scheduler-side thread id (same raw value).
    pub thread: ThreadId,
    /// The controller's dense slot handle, shared by every layer.
    pub slot: JobSlot,
}
