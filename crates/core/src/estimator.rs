//! Proportion estimation (Figure 4).
//!
//! In normal circumstances the new allocation is the cumulative progress
//! pressure multiplied by a constant scaling factor: `P'_t = k·Q_t`.  If the
//! previous allocation overestimated the application's needs — detected by
//! comparing the CPU a thread used with the amount allocated to it — the
//! controller instead reduces the allocation by a constant factor, which
//! reclaims allocation when some other resource is the bottleneck.

use crate::config::ControllerConfig;
use rrs_scheduler::Proportion;

/// The outcome of one proportion-estimation step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EstimateOutcome {
    /// The desired proportion before any squishing.
    pub desired: Proportion,
    /// Whether the reclamation branch (`−C`, "too generous") was taken.
    pub reclaimed: bool,
}

/// Stateless proportion estimator implementing Figure 4.
///
/// # Examples
///
/// ```
/// use rrs_core::{ControllerConfig, ProportionEstimator};
/// use rrs_scheduler::Proportion;
///
/// let config = ControllerConfig::default();
/// let est = ProportionEstimator::new(&config);
/// // A job under strong positive pressure is given more CPU.
/// let out = est.estimate(Proportion::from_ppt(100), 1.0, 1.0);
/// assert!(out.desired.ppt() > 100);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ProportionEstimator {
    gain_k_ppt: f64,
    reclaim_ppt: u32,
    usage_threshold: f64,
    min: Proportion,
    max: Proportion,
}

impl ProportionEstimator {
    /// Creates an estimator from the controller configuration.
    pub fn new(config: &ControllerConfig) -> Self {
        Self {
            gain_k_ppt: config.gain_k_ppt,
            reclaim_ppt: config.reclaim_ppt,
            usage_threshold: config.usage_threshold,
            min: config.min_proportion,
            max: config.max_proportion,
        }
    }

    /// Computes the new desired proportion for a job.
    ///
    /// * `current` — the job's current proportion `P_t`.
    /// * `cumulative_pressure` — the PID output `Q_t`.
    /// * `usage_ratio` — fraction of the last period's allocation the job
    ///   actually used, in `[0, 1]`.
    ///
    /// When `usage_ratio` falls below the configured threshold the job is
    /// considered "too generous\[ly\]" provisioned and its allocation is
    /// reduced by the constant `C`; otherwise the allocation is `k·Q_t`.
    /// The result is clamped to the configured `[min, max]` proportion so
    /// every job always keeps a non-zero allocation (no starvation).
    pub fn estimate(
        &self,
        current: Proportion,
        cumulative_pressure: f64,
        usage_ratio: f64,
    ) -> EstimateOutcome {
        if usage_ratio < self.usage_threshold {
            // Too generous: reclaim a constant amount.
            let reduced = current.ppt().saturating_sub(self.reclaim_ppt);
            return EstimateOutcome {
                desired: self.clamp(reduced),
                reclaimed: true,
            };
        }
        let raw = self.gain_k_ppt * cumulative_pressure;
        let desired = if raw <= 0.0 {
            // Negative cumulative pressure: the job is ahead; the smallest
            // allowed allocation keeps it alive without wasting CPU.
            self.min
        } else {
            self.clamp(raw.round() as u32)
        };
        EstimateOutcome {
            desired,
            reclaimed: false,
        }
    }

    fn clamp(&self, ppt: u32) -> Proportion {
        Proportion::from_ppt(ppt.clamp(self.min.ppt(), self.max.ppt()))
    }

    /// The smallest proportion the estimator will ever emit.
    pub fn min_proportion(&self) -> Proportion {
        self.min
    }

    /// The largest proportion the estimator will ever emit.
    pub fn max_proportion(&self) -> Proportion {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn estimator() -> ProportionEstimator {
        ProportionEstimator::new(&ControllerConfig::default())
    }

    #[test]
    fn positive_pressure_scales_with_k() {
        let est = estimator();
        let out = est.estimate(Proportion::from_ppt(100), 0.4, 1.0);
        // k = 500 ppt per unit pressure → 0.4 maps to 200 ppt.
        assert_eq!(out.desired.ppt(), 200);
        assert!(!out.reclaimed);
    }

    #[test]
    fn negative_pressure_floors_at_min() {
        let est = estimator();
        let out = est.estimate(Proportion::from_ppt(300), -0.4, 1.0);
        assert_eq!(out.desired, est.min_proportion());
        assert!(!out.reclaimed);
    }

    #[test]
    fn low_usage_triggers_reclamation() {
        let est = estimator();
        let out = est.estimate(Proportion::from_ppt(300), 0.5, 0.1);
        assert!(out.reclaimed);
        assert_eq!(out.desired.ppt(), 280); // 300 - C where C = 20
    }

    #[test]
    fn reclamation_never_goes_below_min() {
        let est = estimator();
        let out = est.estimate(Proportion::from_ppt(5), 0.5, 0.0);
        assert!(out.reclaimed);
        assert_eq!(out.desired, est.min_proportion());
    }

    #[test]
    fn usage_at_threshold_is_not_reclaimed() {
        let config = ControllerConfig::default();
        let est = ProportionEstimator::new(&config);
        let out = est.estimate(Proportion::from_ppt(100), 0.2, config.usage_threshold);
        assert!(!out.reclaimed);
    }

    #[test]
    fn desired_is_clamped_to_max() {
        let est = estimator();
        let out = est.estimate(Proportion::from_ppt(100), 100.0, 1.0);
        assert_eq!(out.desired, est.max_proportion());
    }

    #[test]
    fn starvation_is_impossible() {
        // Whatever the inputs, the desired proportion is at least MIN.
        let est = estimator();
        for pressure in [-10.0, -1.0, 0.0, 0.001] {
            for usage in [0.0, 0.3, 1.0] {
                let out = est.estimate(Proportion::ZERO, pressure, usage);
                assert!(out.desired.ppt() >= 1);
            }
        }
    }

    proptest! {
        #[test]
        fn output_is_always_within_bounds(
            current in 0u32..=1000,
            pressure in -5.0f64..5.0,
            usage in 0.0f64..1.0,
        ) {
            let est = estimator();
            let out = est.estimate(Proportion::from_ppt(current), pressure, usage);
            prop_assert!(out.desired.ppt() >= est.min_proportion().ppt());
            prop_assert!(out.desired.ppt() <= est.max_proportion().ppt());
        }

        #[test]
        fn desired_is_monotone_in_pressure(
            p1 in -2.0f64..2.0,
            p2 in -2.0f64..2.0,
            current in 0u32..=1000,
        ) {
            let est = estimator();
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            let out_lo = est.estimate(Proportion::from_ppt(current), lo, 1.0);
            let out_hi = est.estimate(Proportion::from_ppt(current), hi, 1.0);
            prop_assert!(out_lo.desired.ppt() <= out_hi.desired.ppt());
        }

        #[test]
        fn reclamation_only_when_usage_below_threshold(
            usage in 0.0f64..1.0,
            pressure in -1.0f64..1.0,
        ) {
            let config = ControllerConfig::default();
            let est = ProportionEstimator::new(&config);
            let out = est.estimate(Proportion::from_ppt(500), pressure, usage);
            prop_assert_eq!(out.reclaimed, usage < config.usage_threshold);
        }
    }
}
