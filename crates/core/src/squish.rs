//! Overload response: squishing allocations (§3.3, "Responding to Overload").
//!
//! When the sum of desired allocations exceeds the available CPU, the
//! controller "squishes each miscellaneous or real-rate job's proposed
//! allocation by an amount proportional to the allocation", which in the
//! absence of other information converges to equal sharing.  The extended
//! policy associates an **importance** with each job: a weighted fair share
//! where "importance determines the likelihood that a thread will get its
//! desired allocation" — unlike priority, a more important job can never
//! starve a less important one.

use rrs_scheduler::Proportion;
use serde::{Deserialize, Serialize};

/// The importance (weight) of a job under weighted fair-share squishing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Importance(f64);

impl Importance {
    /// The default importance.
    pub const NORMAL: Importance = Importance(1.0);

    /// Creates an importance weight; values are clamped to be at least a
    /// small positive number so no job can be weighted to zero (which would
    /// reintroduce starvation).
    pub fn new(weight: f64) -> Self {
        Self(weight.max(0.01))
    }

    /// Returns the weight.
    pub fn weight(self) -> f64 {
        self.0
    }
}

impl Default for Importance {
    fn default() -> Self {
        Importance::NORMAL
    }
}

/// Which squish policy the controller applies under overload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SquishPolicy {
    /// Scale every squishable job by the same factor (proportional to its
    /// request, so larger requests lose more in absolute terms).
    FairShare,
    /// Water-fill the available capacity by importance weight, capping each
    /// job at its request.
    WeightedFairShare,
}

/// One job's request under squishing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SquishRequest {
    /// The proportion the job wants.
    pub desired: Proportion,
    /// The job's importance (ignored by [`SquishPolicy::FairShare`]).
    pub importance: Importance,
    /// The smallest proportion the job may be squished to.
    pub floor: Proportion,
}

impl SquishRequest {
    /// Creates a request with normal importance and a floor of 1 ‰.
    pub fn new(desired: Proportion) -> Self {
        Self {
            desired,
            importance: Importance::NORMAL,
            floor: Proportion::MIN_NONZERO,
        }
    }

    /// Sets the importance.
    pub fn with_importance(mut self, importance: Importance) -> Self {
        self.importance = importance;
        self
    }
}

/// Reusable scratch buffers for the squish algorithms, so the controller's
/// steady-state cycle performs no heap allocation once warmed up.
#[derive(Debug, Clone, Default)]
pub struct SquishScratch {
    grant: Vec<f64>,
    capped: Vec<bool>,
}

/// Squishes requests by plain fair share: every request is scaled by the
/// same factor so the total fits in `available`.
///
/// Jobs never fall below their floor; if even the floors do not fit, every
/// job gets exactly its floor (the system is hopelessly oversubscribed and
/// admission control or quality exceptions must resolve it).
pub fn squish_fair_share(requests: &[SquishRequest], available: Proportion) -> Vec<Proportion> {
    let mut out = Vec::new();
    squish_fair_share_into(requests, available.ppt(), &mut out);
    out
}

/// Allocation-free variant of [`squish_fair_share`]: grants are written
/// into `out` (cleared first, capacity reused).
///
/// `available_ppt` is the machine-wide capacity in parts per thousand and
/// may exceed 1000 on a multi-CPU machine; individual grants are still
/// capped at each job's (single-CPU) request.
pub fn squish_fair_share_into(
    requests: &[SquishRequest],
    available_ppt: u32,
    out: &mut Vec<Proportion>,
) {
    out.clear();
    let total: u64 = requests.iter().map(|r| r.desired.ppt() as u64).sum();
    let avail = available_ppt as u64;
    if total <= avail {
        out.extend(requests.iter().map(|r| r.desired));
        return;
    }
    if total == 0 {
        out.extend(requests.iter().map(|r| r.floor));
        return;
    }
    let scale = avail as f64 / total as f64;
    out.extend(requests.iter().map(|r| {
        let scaled = (r.desired.ppt() as f64 * scale).floor() as u32;
        Proportion::from_ppt(scaled.max(r.floor.ppt()))
    }));
}

/// Squishes requests by importance-weighted fair share (water-filling).
///
/// Capacity is repeatedly divided among unsatisfied jobs in proportion to
/// their importance; jobs whose share exceeds their request are capped at
/// the request and the surplus is redistributed.  The result never exceeds
/// any job's request, never falls below its floor, and gives more important
/// jobs a larger fraction of what they asked for.
pub fn squish_weighted(requests: &[SquishRequest], available: Proportion) -> Vec<Proportion> {
    let mut out = Vec::new();
    squish_weighted_into(
        requests,
        available.ppt(),
        &mut SquishScratch::default(),
        &mut out,
    );
    out
}

/// Allocation-free variant of [`squish_weighted`]: grants are written into
/// `out` and the water-fill working state lives in `scratch` (both cleared
/// first, capacities reused).
///
/// `available_ppt` is the machine-wide capacity in parts per thousand and
/// may exceed 1000 on a multi-CPU machine; individual grants are still
/// capped at each job's (single-CPU) request.
pub fn squish_weighted_into(
    requests: &[SquishRequest],
    available_ppt: u32,
    scratch: &mut SquishScratch,
    out: &mut Vec<Proportion>,
) {
    out.clear();
    let total: u64 = requests.iter().map(|r| r.desired.ppt() as u64).sum();
    let avail = available_ppt as f64;
    if total <= available_ppt as u64 {
        out.extend(requests.iter().map(|r| r.desired));
        return;
    }

    let n = requests.len();
    let grant = &mut scratch.grant;
    let capped = &mut scratch.capped;
    grant.clear();
    grant.resize(n, 0.0);
    capped.clear();
    capped.resize(n, false);
    let mut remaining = avail;

    // Water-fill: at most n rounds.
    for _ in 0..n {
        let active_weight: f64 = requests
            .iter()
            .zip(capped.iter())
            .filter(|(_, &c)| !c)
            .map(|(r, _)| r.importance.weight())
            .sum();
        if active_weight <= 0.0 || remaining <= 0.0 {
            break;
        }
        let mut newly_capped = false;
        let unit = remaining / active_weight;
        for i in 0..n {
            if capped[i] {
                continue;
            }
            let offered = grant[i] + unit * requests[i].importance.weight();
            if offered >= requests[i].desired.ppt() as f64 {
                remaining -= requests[i].desired.ppt() as f64 - grant[i];
                grant[i] = requests[i].desired.ppt() as f64;
                capped[i] = true;
                newly_capped = true;
            }
        }
        if !newly_capped {
            // No one capped this round: hand out the rest proportionally.
            for i in 0..n {
                if !capped[i] {
                    grant[i] += unit * requests[i].importance.weight();
                }
            }
            break;
        }
    }

    out.extend(requests.iter().enumerate().map(|(i, r)| {
        let g = grant[i].floor() as u32;
        Proportion::from_ppt(g.clamp(r.floor.ppt(), r.desired.ppt().max(r.floor.ppt())))
    }));
}

/// Applies the configured policy.
pub fn squish(
    policy: SquishPolicy,
    requests: &[SquishRequest],
    available: Proportion,
) -> Vec<Proportion> {
    match policy {
        SquishPolicy::FairShare => squish_fair_share(requests, available),
        SquishPolicy::WeightedFairShare => squish_weighted(requests, available),
    }
}

/// Applies the configured policy without allocating: grants go to `out`,
/// working state to `scratch` (capacities reused across calls).
/// `available_ppt` may exceed 1000 on a multi-CPU machine.
pub fn squish_into(
    policy: SquishPolicy,
    requests: &[SquishRequest],
    available_ppt: u32,
    scratch: &mut SquishScratch,
    out: &mut Vec<Proportion>,
) {
    match policy {
        SquishPolicy::FairShare => squish_fair_share_into(requests, available_ppt, out),
        SquishPolicy::WeightedFairShare => {
            squish_weighted_into(requests, available_ppt, scratch, out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn req(ppt: u32) -> SquishRequest {
        SquishRequest::new(Proportion::from_ppt(ppt))
    }

    fn req_w(ppt: u32, weight: f64) -> SquishRequest {
        SquishRequest::new(Proportion::from_ppt(ppt)).with_importance(Importance::new(weight))
    }

    #[test]
    fn no_squish_needed_when_capacity_suffices() {
        let requests = [req(200), req(300)];
        let available = Proportion::from_ppt(600);
        assert_eq!(
            squish_fair_share(&requests, available),
            vec![Proportion::from_ppt(200), Proportion::from_ppt(300)]
        );
        assert_eq!(
            squish_weighted(&requests, available),
            vec![Proportion::from_ppt(200), Proportion::from_ppt(300)]
        );
    }

    #[test]
    fn fair_share_scales_proportionally() {
        let requests = [req(600), req(300)];
        let out = squish_fair_share(&requests, Proportion::from_ppt(450));
        // Scale factor 0.5.
        assert_eq!(out[0].ppt(), 300);
        assert_eq!(out[1].ppt(), 150);
    }

    #[test]
    fn equal_greedy_jobs_share_equally() {
        // "In the absence of other information this policy results in equal
        // allocation of the CPU to all competing jobs."
        let requests = [req(1000), req(1000), req(1000)];
        let out = squish_fair_share(&requests, Proportion::from_ppt(900));
        assert_eq!(out[0].ppt(), 300);
        assert_eq!(out[1].ppt(), 300);
        assert_eq!(out[2].ppt(), 300);
    }

    #[test]
    fn weighted_gives_important_job_more() {
        let requests = [req_w(1000, 2.0), req_w(1000, 1.0)];
        let out = squish_weighted(&requests, Proportion::from_ppt(900));
        assert!(out[0].ppt() > out[1].ppt());
        // 2:1 split of 900.
        assert_eq!(out[0].ppt(), 600);
        assert_eq!(out[1].ppt(), 300);
    }

    #[test]
    fn weighted_never_starves_unimportant_job() {
        let requests = [req_w(1000, 100.0), req_w(1000, 0.01)];
        let out = squish_weighted(&requests, Proportion::from_ppt(900));
        assert!(out[1].ppt() >= 1, "unimportant job was starved");
        assert!(out[0].ppt() > out[1].ppt());
    }

    #[test]
    fn weighted_caps_at_request_and_redistributes() {
        // Job 0 wants only 100 ‰; its unused share goes to job 1.
        let requests = [req_w(100, 1.0), req_w(1000, 1.0)];
        let out = squish_weighted(&requests, Proportion::from_ppt(900));
        assert_eq!(out[0].ppt(), 100);
        assert_eq!(out[1].ppt(), 800);
    }

    #[test]
    fn weighted_satisfied_jobs_keep_their_request() {
        let requests = [req_w(50, 1.0), req_w(50, 5.0), req_w(2000, 1.0)];
        let out = squish_weighted(&requests, Proportion::from_ppt(900));
        assert_eq!(out[0].ppt(), 50);
        assert_eq!(out[1].ppt(), 50);
        assert_eq!(out[2].ppt(), 800);
    }

    #[test]
    fn weighted_with_equal_importances_degenerates_to_equal_split() {
        // With equal weights the water-fill must match plain fair share on
        // identical requests: no job is favoured.
        let requests = [req_w(1000, 3.0), req_w(1000, 3.0), req_w(1000, 3.0)];
        let out = squish_weighted(&requests, Proportion::from_ppt(900));
        assert_eq!(out[0].ppt(), 300);
        assert_eq!(out[1].ppt(), 300);
        assert_eq!(out[2].ppt(), 300);
    }

    #[test]
    fn zero_desire_request_is_capped_at_its_floor() {
        // A job that asks for nothing must not absorb capacity under either
        // policy; it is held at its floor while the rest is distributed.
        let requests = [req(0), req(1000), req(1000)];
        for policy in [SquishPolicy::FairShare, SquishPolicy::WeightedFairShare] {
            let out = squish(policy, &requests, Proportion::from_ppt(900));
            assert_eq!(
                out[0], requests[0].floor,
                "zero-desire job held at floor under {policy:?}"
            );
            assert!(out[1].ppt() > 300 && out[2].ppt() > 300);
        }
    }

    #[test]
    fn desired_total_exactly_at_capacity_is_not_squished() {
        let requests = [req(600), req(300)];
        let out = squish_fair_share(&requests, Proportion::from_ppt(900));
        assert_eq!(out[0].ppt(), 600);
        assert_eq!(out[1].ppt(), 300);
        let out = squish_weighted(&requests, Proportion::from_ppt(900));
        assert_eq!(out[0].ppt(), 600);
        assert_eq!(out[1].ppt(), 300);
    }

    #[test]
    fn into_variants_reuse_buffers_and_match_the_allocating_api() {
        let requests = [req_w(700, 2.0), req_w(600, 1.0), req_w(100, 1.0)];
        let available = Proportion::from_ppt(800);
        let mut scratch = SquishScratch::default();
        let mut out = Vec::new();
        for policy in [SquishPolicy::FairShare, SquishPolicy::WeightedFairShare] {
            squish_into(policy, &requests, available.ppt(), &mut scratch, &mut out);
            assert_eq!(out, squish(policy, &requests, available));
        }
        let cap = out.capacity();
        squish_into(
            SquishPolicy::WeightedFairShare,
            &requests,
            available.ppt(),
            &mut scratch,
            &mut out,
        );
        assert_eq!(out.capacity(), cap, "buffers are reused, not reallocated");
    }

    #[test]
    fn multi_cpu_capacity_above_one_cpu_is_respected() {
        // A 4-CPU machine offers 3800 ‰; three greedy jobs fit without
        // squishing, each still capped at one CPU's worth.
        let requests = [req(1000), req(1000), req(1000)];
        let mut scratch = SquishScratch::default();
        let mut out = Vec::new();
        for policy in [SquishPolicy::FairShare, SquishPolicy::WeightedFairShare] {
            squish_into(policy, &requests, 3800, &mut scratch, &mut out);
            assert_eq!(out.iter().map(|p| p.ppt()).sum::<u32>(), 3000);
        }
        // Five such jobs exceed 3800 ‰ and are squished to fit it.
        let requests = [req(1000); 5];
        squish_into(
            SquishPolicy::WeightedFairShare,
            &requests,
            3800,
            &mut scratch,
            &mut out,
        );
        let total: u32 = out.iter().map(|p| p.ppt()).sum();
        assert!((3700..=3800).contains(&total), "got {total}");
        assert!(out.iter().all(|p| p.ppt() <= 1000));
    }

    #[test]
    fn empty_request_list() {
        assert!(squish_fair_share(&[], Proportion::from_ppt(500)).is_empty());
        assert!(squish_weighted(&[], Proportion::from_ppt(500)).is_empty());
    }

    #[test]
    fn zero_desired_total_with_fair_share() {
        let requests = [req(0), req(0)];
        let out = squish_fair_share(&requests, Proportion::from_ppt(0));
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn policy_dispatcher() {
        let requests = [req(600), req(600)];
        let a = squish(
            SquishPolicy::FairShare,
            &requests,
            Proportion::from_ppt(600),
        );
        let b = squish(
            SquishPolicy::WeightedFairShare,
            &requests,
            Proportion::from_ppt(600),
        );
        assert_eq!(a[0].ppt() + a[1].ppt(), 600);
        // Weighted water-fill may round down each grant by at most 1 ‰.
        let total_b = b[0].ppt() + b[1].ppt();
        assert!((598..=600).contains(&total_b));
    }

    #[test]
    fn importance_is_clamped_positive() {
        assert!(Importance::new(-5.0).weight() > 0.0);
        assert_eq!(Importance::default().weight(), 1.0);
    }

    proptest! {
        #[test]
        fn fair_share_result_fits_capacity(
            desires in proptest::collection::vec(0u32..=1000, 1..10),
            available in 100u32..=1000,
        ) {
            let requests: Vec<SquishRequest> = desires.iter().map(|&d| req(d)).collect();
            let out = squish_fair_share(&requests, Proportion::from_ppt(available));
            let total: u64 = out.iter().map(|p| p.ppt() as u64).sum();
            let desired_total: u64 = desires.iter().map(|&d| d as u64).sum();
            // Either everything fits, or the result respects the capacity
            // (up to the per-job floors which add at most n ‰).
            if desired_total > available as u64 {
                prop_assert!(total <= available as u64 + requests.len() as u64);
            } else {
                prop_assert_eq!(total, desired_total);
            }
            // No one ever gets more than they asked for (or their floor).
            for (r, got) in requests.iter().zip(&out) {
                prop_assert!(got.ppt() <= r.desired.ppt().max(r.floor.ppt()));
            }
        }

        #[test]
        fn weighted_result_fits_capacity_and_respects_requests(
            desires in proptest::collection::vec(1u32..=1000, 1..10),
            weights in proptest::collection::vec(0.1f64..10.0, 10),
            available in 100u32..=1000,
        ) {
            let requests: Vec<SquishRequest> = desires
                .iter()
                .zip(weights.iter())
                .map(|(&d, &w)| req_w(d, w))
                .collect();
            let out = squish_weighted(&requests, Proportion::from_ppt(available));
            let total: u64 = out.iter().map(|p| p.ppt() as u64).sum();
            let desired_total: u64 = desires.iter().map(|&d| d as u64).sum();
            if desired_total > available as u64 {
                prop_assert!(total <= available as u64 + requests.len() as u64);
            }
            for (r, got) in requests.iter().zip(&out) {
                prop_assert!(got.ppt() <= r.desired.ppt().max(r.floor.ppt()));
                prop_assert!(got.ppt() >= r.floor.ppt());
            }
        }

        #[test]
        fn weighted_preserves_importance_ordering_for_identical_requests(
            w1 in 0.1f64..10.0,
            w2 in 0.1f64..10.0,
            available in 100u32..900,
        ) {
            let requests = [req_w(1000, w1), req_w(1000, w2)];
            let out = squish_weighted(&requests, Proportion::from_ppt(available));
            if w1 > w2 {
                prop_assert!(out[0].ppt() >= out[1].ppt());
            } else if w2 > w1 {
                prop_assert!(out[1].ppt() >= out[0].ppt());
            }
        }
    }
}
