//! Dense slot-indexed job storage.
//!
//! The controller's steady-state cycle iterates every managed job.  With a
//! `BTreeMap<JobId, _>` that walk is pointer-chasing and every id lookup
//! pays `O(log n)`; with a dense `Vec` it is a cache-friendly linear scan
//! and a [`JobSlot`] resolves in `O(1)`.  Slots are generational so a
//! handle left over from a removed job can never silently alias a new one:
//! removal frees the slot index onto a free list and bumps its generation,
//! invalidating stale handles.
//!
//! The same handle is shared by every layer of the system — the simulator,
//! the wall-clock executor and the benches carry the `JobSlot` next to
//! their own thread handle instead of re-deriving `JobId ↔ ThreadId ↔
//! JobKey` mappings each cycle.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A dense, generational handle to a job managed by the controller.
///
/// Obtained from [`crate::Controller::add_job`]; `O(1)` to resolve,
/// invalidated by removal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobSlot {
    index: u32,
    generation: u32,
}

impl JobSlot {
    /// The dense index of this slot, usable for parallel side tables.
    ///
    /// Indices are reused after removal; pair with the generation (the full
    /// `JobSlot`) when staleness matters.
    pub fn index(self) -> usize {
        self.index as usize
    }

    /// The slot's generation; bumped each time the index is reused.
    pub fn generation(self) -> u32 {
        self.generation
    }
}

impl std::fmt::Display for JobSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "slot{}.{}", self.index, self.generation)
    }
}

/// Dense storage of `T` keyed by [`JobSlot`], with a by-id index.
///
/// Iteration order is slot order (insertion order, with removed slots
/// reused LIFO), not id order; [`SlotTable::ids`] provides the id-ordered
/// view for queries that want determinism by id.
#[derive(Debug)]
pub struct SlotTable<Id: Ord + Copy, T> {
    entries: Vec<Option<(Id, T)>>,
    generations: Vec<u32>,
    free: Vec<u32>,
    by_id: BTreeMap<Id, JobSlot>,
}

impl<Id: Ord + Copy, T> Default for SlotTable<Id, T> {
    fn default() -> Self {
        Self {
            entries: Vec::new(),
            generations: Vec::new(),
            free: Vec::new(),
            by_id: BTreeMap::new(),
        }
    }
}

impl<Id: Ord + Copy, T> SlotTable<Id, T> {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// Returns `true` if no entries are live.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Upper bound (exclusive) of live slot indices; the capacity side
    /// tables indexed by [`JobSlot::index`] must have.
    pub fn dense_len(&self) -> usize {
        self.entries.len()
    }

    /// Inserts an entry, returning its slot, or `None` if the id is taken.
    pub fn insert(&mut self, id: Id, value: T) -> Option<JobSlot> {
        if self.by_id.contains_key(&id) {
            return None;
        }
        let slot = match self.free.pop() {
            Some(index) => JobSlot {
                index,
                generation: self.generations[index as usize],
            },
            None => {
                let index = u32::try_from(self.entries.len()).expect("fewer than 2^32 jobs");
                self.entries.push(None);
                self.generations.push(0);
                JobSlot {
                    index,
                    generation: 0,
                }
            }
        };
        self.entries[slot.index()] = Some((id, value));
        self.by_id.insert(id, slot);
        Some(slot)
    }

    /// The slot currently assigned to `id`.
    pub fn slot_of(&self, id: Id) -> Option<JobSlot> {
        self.by_id.get(&id).copied()
    }

    /// The id stored at `slot`, if the slot is live and current.
    pub fn id_of(&self, slot: JobSlot) -> Option<Id> {
        self.check(slot)?;
        self.entries[slot.index()].as_ref().map(|(id, _)| *id)
    }

    fn check(&self, slot: JobSlot) -> Option<()> {
        if self.generations.get(slot.index()) == Some(&slot.generation) {
            Some(())
        } else {
            None
        }
    }

    /// Shared access by slot.
    pub fn get(&self, slot: JobSlot) -> Option<&T> {
        self.check(slot)?;
        self.entries[slot.index()].as_ref().map(|(_, v)| v)
    }

    /// Exclusive access by slot.
    pub fn get_mut(&mut self, slot: JobSlot) -> Option<&mut T> {
        self.check(slot)?;
        self.entries[slot.index()].as_mut().map(|(_, v)| v)
    }

    /// Shared access by id.
    pub fn get_by_id(&self, id: Id) -> Option<&T> {
        self.get(self.slot_of(id)?)
    }

    /// Exclusive access by id.
    pub fn get_by_id_mut(&mut self, id: Id) -> Option<&mut T> {
        self.get_mut(self.slot_of(id)?)
    }

    /// Removes the entry for `id`, freeing its slot for reuse.
    pub fn remove(&mut self, id: Id) -> Option<(JobSlot, T)> {
        let slot = self.by_id.remove(&id)?;
        let (_, value) = self.entries[slot.index()]
            .take()
            .expect("indexed entry is live");
        self.generations[slot.index()] = self.generations[slot.index()].wrapping_add(1);
        self.free.push(slot.index);
        Some((slot, value))
    }

    /// Removes the entry at `slot` if it is live and current.
    pub fn remove_slot(&mut self, slot: JobSlot) -> Option<(Id, T)> {
        let id = self.id_of(slot)?;
        let (_, value) = self.remove(id)?;
        Some((id, value))
    }

    /// Iterates live entries in slot order without allocating.
    pub fn iter(&self) -> impl Iterator<Item = (JobSlot, Id, &T)> {
        self.entries.iter().enumerate().filter_map(move |(i, e)| {
            e.as_ref().map(|(id, v)| {
                (
                    JobSlot {
                        index: i as u32,
                        generation: self.generations[i],
                    },
                    *id,
                    v,
                )
            })
        })
    }

    /// Iterates live entries mutably in slot order without allocating.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (JobSlot, Id, &mut T)> {
        let generations = &self.generations;
        self.entries
            .iter_mut()
            .enumerate()
            .filter_map(move |(i, e)| {
                e.as_mut().map(|(id, v)| {
                    (
                        JobSlot {
                            index: i as u32,
                            generation: generations[i],
                        },
                        *id,
                        v,
                    )
                })
            })
    }

    /// Live ids in id order.
    pub fn ids(&self) -> impl Iterator<Item = Id> + '_ {
        self.by_id.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut t: SlotTable<u64, &str> = SlotTable::new();
        let a = t.insert(10, "a").unwrap();
        let b = t.insert(20, "b").unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(a), Some(&"a"));
        assert_eq!(t.get_by_id(20), Some(&"b"));
        assert_eq!(t.slot_of(10), Some(a));
        assert_eq!(t.id_of(b), Some(20));
        assert_eq!(t.remove(10), Some((a, "a")));
        assert_eq!(t.get(a), None, "stale handle must not resolve");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn duplicate_ids_are_rejected() {
        let mut t: SlotTable<u64, u8> = SlotTable::new();
        t.insert(1, 0).unwrap();
        assert!(t.insert(1, 1).is_none());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn slots_are_reused_with_new_generations() {
        let mut t: SlotTable<u64, u8> = SlotTable::new();
        let a = t.insert(1, 0).unwrap();
        t.remove(1);
        let b = t.insert(2, 1).unwrap();
        assert_eq!(a.index(), b.index(), "freed slot index is reused");
        assert_ne!(a.generation(), b.generation());
        assert_eq!(t.get(a), None, "old generation stays dead");
        assert_eq!(t.get(b), Some(&1));
        assert_eq!(t.dense_len(), 1, "no dense growth on reuse");
    }

    #[test]
    fn iteration_is_slot_ordered_and_skips_holes() {
        let mut t: SlotTable<u64, u8> = SlotTable::new();
        t.insert(5, 50).unwrap();
        t.insert(3, 30).unwrap();
        t.insert(9, 90).unwrap();
        t.remove(3);
        let seen: Vec<(u64, u8)> = t.iter().map(|(_, id, v)| (id, *v)).collect();
        assert_eq!(seen, vec![(5, 50), (9, 90)]);
        let ids: Vec<u64> = t.ids().collect();
        assert_eq!(ids, vec![5, 9]);
        for (_, _, v) in t.iter_mut() {
            *v += 1;
        }
        assert_eq!(t.get_by_id_mut(5), Some(&mut 51));
    }

    #[test]
    fn remove_slot_checks_generation() {
        let mut t: SlotTable<u64, u8> = SlotTable::new();
        let a = t.insert(1, 0).unwrap();
        t.remove(1);
        t.insert(2, 1).unwrap();
        assert!(t.remove_slot(a).is_none(), "stale slot cannot remove");
        assert_eq!(t.len(), 1);
    }
}
