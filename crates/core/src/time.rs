//! The one time type every host speaks.
//!
//! Historically the simulator measured time in `f64` seconds
//! (`run_for(20.0)`) while the wall-clock executor took
//! [`std::time::Duration`] — the same quantity, two incompatible front
//! doors.  [`SimTime`] ends the split: an integer microsecond count (the
//! resolution every layer below already uses) with lossless conversions
//! to and from both older forms.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// A span (or instant, measured from a host's epoch) of host time, in
/// integer microseconds.
///
/// On the simulated backend this is simulated time; on the wall-clock
/// backend it is real elapsed time.  Either way the arithmetic is exact:
/// no `f64` seconds, no `Duration`-vs-seconds mismatch.
///
/// ```
/// use rrs_core::SimTime;
/// use std::time::Duration;
///
/// assert_eq!(SimTime::from_secs_f64(1.5), SimTime::from_millis(1_500));
/// assert_eq!(SimTime::from(Duration::from_millis(2)).as_micros(), 2_000);
/// let t = SimTime::from_millis(10) + SimTime::from_micros(5);
/// assert_eq!(t.as_micros(), 10_005);
/// ```
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// Alias for [`SimTime`] emphasising the unit: every host clock counts
/// integer microseconds.
pub type Micros = SimTime;

impl SimTime {
    /// Zero elapsed time.
    pub const ZERO: SimTime = SimTime(0);

    /// A span of `us` microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Self(us)
    }

    /// A span of `ms` milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Self(ms * 1_000)
    }

    /// A span of `s` whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Self(s * 1_000_000)
    }

    /// A span of `s` seconds, rounded to the nearest microsecond — the
    /// same rounding the simulator's old `run_for(f64)` applied, so
    /// migrated callers reproduce their runs exactly.
    pub fn from_secs_f64(s: f64) -> Self {
        Self((s * 1e6).round().max(0.0) as u64)
    }

    /// The span in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The span in seconds, as a float (for display and plotting only —
    /// arithmetic should stay in microseconds).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The span as a [`Duration`].
    pub const fn as_duration(self) -> Duration {
        Duration::from_micros(self.0)
    }

    /// The difference to `other`, clamped at zero.
    pub const fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }
}

impl From<Duration> for SimTime {
    fn from(d: Duration) -> Self {
        Self(d.as_micros().min(u64::MAX as u128) as u64)
    }
}

impl From<SimTime> for Duration {
    fn from(t: SimTime) -> Self {
        t.as_duration()
    }
}

impl std::ops::Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl std::ops::Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0.is_multiple_of(1_000_000) {
            write!(f, "{}s", self.0 / 1_000_000)
        } else if self.0.is_multiple_of(1_000) {
            write!(f, "{}ms", self.0 / 1_000)
        } else {
            write!(f, "{}µs", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_are_exact() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_secs_f64(0.0105).as_micros(), 10_500);
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::from(Duration::from_secs(1)), SimTime::from_secs(1));
        assert_eq!(
            Duration::from(SimTime::from_millis(7)),
            Duration::from_millis(7)
        );
        let m: Micros = SimTime::from_micros(9);
        assert_eq!(m.as_micros(), 9);
    }

    #[test]
    fn arithmetic_and_ordering() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(4);
        assert_eq!(a - b, SimTime::from_millis(6));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert!(b < a);
        let mut c = a;
        c += b;
        assert_eq!(c, SimTime::from_millis(14));
    }

    #[test]
    fn display_picks_the_tightest_unit() {
        assert_eq!(SimTime::from_secs(2).to_string(), "2s");
        assert_eq!(SimTime::from_millis(1_500).to_string(), "1500ms");
        assert_eq!(SimTime::from_micros(42).to_string(), "42µs");
    }

    #[test]
    fn serde_round_trip() {
        let t = SimTime::from_micros(123_456);
        let json = serde_json::to_string(&t).unwrap();
        assert_eq!(json, "123456");
        let back: SimTime = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
