//! Period estimation for aperiodic real-rate jobs (§3.3).
//!
//! "Currently, we use a simple heuristic which increases the period to
//! reduce quantization error when the proportion is small, since the
//! dispatcher can only allocate multiples of the dispatch interval.  The
//! controller decreases the period to reduce jitter, which we detect via
//! large oscillations relative to the buffer size.  The controller
//! determines the magnitude of oscillation by monitoring the amount of
//! change in fill-level over the course of a period, averaged over several
//! periods."
//!
//! The paper disabled this heuristic for its experiments; it is implemented
//! here so the ablation bench can study it.

use rrs_feedback::MovingAverage;
use rrs_scheduler::{Period, Proportion};
use serde::{Deserialize, Serialize};

/// Tuning parameters for the period-estimation heuristic.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PeriodEstimatorConfig {
    /// Dispatch interval of the underlying scheduler, in microseconds.
    pub dispatch_interval_us: u64,
    /// Increase the period when the per-period budget falls below this many
    /// dispatch intervals (quantization error becomes significant).
    pub min_quanta_per_period: u64,
    /// Decrease the period when the average per-period fill-level swing
    /// exceeds this fraction of the buffer.
    pub jitter_threshold: f64,
    /// Multiplicative step for period changes.
    pub adjust_factor: f64,
    /// Number of recent periods over which the fill-level swing is averaged.
    pub oscillation_window: usize,
    /// Smallest period the heuristic may choose, in microseconds.
    pub min_period_us: u64,
    /// Largest period the heuristic may choose, in microseconds.
    pub max_period_us: u64,
}

impl Default for PeriodEstimatorConfig {
    fn default() -> Self {
        Self {
            dispatch_interval_us: 1_000,
            min_quanta_per_period: 4,
            jitter_threshold: 0.25,
            adjust_factor: 1.25,
            oscillation_window: 8,
            min_period_us: 5_000,
            max_period_us: 200_000,
        }
    }
}

/// Per-job period estimator.
#[derive(Debug, Clone)]
pub struct PeriodEstimator {
    config: PeriodEstimatorConfig,
    swing: MovingAverage,
    min_fill_this_period: f64,
    max_fill_this_period: f64,
    have_sample: bool,
}

impl PeriodEstimator {
    /// Creates an estimator with the given configuration.
    pub fn new(config: PeriodEstimatorConfig) -> Self {
        Self {
            swing: MovingAverage::new(config.oscillation_window.max(1)),
            config,
            min_fill_this_period: f64::INFINITY,
            max_fill_this_period: f64::NEG_INFINITY,
            have_sample: false,
        }
    }

    /// Creates an estimator with default configuration.
    pub fn with_defaults() -> Self {
        Self::new(PeriodEstimatorConfig::default())
    }

    /// Records one fill-level observation (fraction in `[0, 1]`) taken
    /// during the current period.
    pub fn observe_fill(&mut self, fill_fraction: f64) {
        let f = fill_fraction.clamp(0.0, 1.0);
        self.min_fill_this_period = self.min_fill_this_period.min(f);
        self.max_fill_this_period = self.max_fill_this_period.max(f);
        self.have_sample = true;
    }

    /// Average fill-level swing per period over the configured window.
    pub fn average_swing(&self) -> f64 {
        self.swing.value()
    }

    /// Closes the current period and proposes the next period length given
    /// the job's current proportion and period.
    ///
    /// Quantization wins over jitter: if the per-period budget is below the
    /// configured number of dispatch quanta, the period grows even if the
    /// buffer is oscillating.
    pub fn end_period(&mut self, proportion: Proportion, period: Period) -> Period {
        if self.have_sample {
            let swing = (self.max_fill_this_period - self.min_fill_this_period).max(0.0);
            self.swing.update(swing);
        }
        self.min_fill_this_period = f64::INFINITY;
        self.max_fill_this_period = f64::NEG_INFINITY;
        self.have_sample = false;

        let budget_us = (period.as_micros() as f64 * proportion.as_fraction()).round() as u64;
        let quanta = budget_us / self.config.dispatch_interval_us.max(1);

        let factor = self.config.adjust_factor.max(1.0 + f64::EPSILON);
        let mut next_us = period.as_micros() as f64;
        if quanta < self.config.min_quanta_per_period {
            // Small proportion: grow the period to reduce quantization error.
            next_us *= factor;
        } else if self.swing.value() > self.config.jitter_threshold {
            // Large oscillations: shrink the period to reduce jitter.
            next_us /= factor;
        }
        let clamped = next_us.round().clamp(
            self.config.min_period_us as f64,
            self.config.max_period_us as f64,
        ) as u64;
        Period::from_micros(clamped.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn config() -> PeriodEstimatorConfig {
        PeriodEstimatorConfig::default()
    }

    #[test]
    fn small_proportion_grows_period() {
        let mut est = PeriodEstimator::new(config());
        // 1 ‰ of 10 ms = 10 µs budget: far below 4 dispatch quanta.
        let next = est.end_period(Proportion::from_ppt(1), Period::from_millis(10));
        assert!(next.as_micros() > 10_000);
    }

    #[test]
    fn high_oscillation_shrinks_period() {
        let mut est = PeriodEstimator::new(config());
        // Large swings for several periods.
        let mut period = Period::from_millis(100);
        for _ in 0..10 {
            est.observe_fill(0.1);
            est.observe_fill(0.9);
            period = est.end_period(Proportion::from_ppt(500), period);
        }
        assert!(period.as_millis() < 100);
    }

    #[test]
    fn steady_fill_keeps_period() {
        let mut est = PeriodEstimator::new(config());
        let mut period = Period::from_millis(30);
        for _ in 0..10 {
            est.observe_fill(0.5);
            est.observe_fill(0.52);
            period = est.end_period(Proportion::from_ppt(500), period);
        }
        assert_eq!(period, Period::from_millis(30));
    }

    #[test]
    fn period_respects_bounds() {
        let mut est = PeriodEstimator::new(config());
        let mut period = Period::from_millis(150);
        // Force repeated growth.
        for _ in 0..50 {
            period = est.end_period(Proportion::from_ppt(1), period);
        }
        assert!(period.as_micros() <= config().max_period_us);

        let mut est = PeriodEstimator::new(config());
        let mut period = Period::from_millis(10);
        for _ in 0..50 {
            est.observe_fill(0.0);
            est.observe_fill(1.0);
            period = est.end_period(Proportion::from_ppt(900), period);
        }
        assert!(period.as_micros() >= config().min_period_us);
    }

    #[test]
    fn quantization_takes_precedence_over_jitter() {
        let mut est = PeriodEstimator::new(config());
        // Oscillating fill *and* a tiny proportion: the period must grow.
        for _ in 0..5 {
            est.observe_fill(0.0);
            est.observe_fill(1.0);
            est.end_period(Proportion::from_ppt(1), Period::from_millis(20));
        }
        let next = est.end_period(Proportion::from_ppt(1), Period::from_millis(20));
        assert!(next.as_millis() > 20);
    }

    #[test]
    fn swing_tracking_averages_over_window() {
        let mut est = PeriodEstimator::new(config());
        est.observe_fill(0.2);
        est.observe_fill(0.8);
        est.end_period(Proportion::from_ppt(500), Period::from_millis(30));
        assert!((est.average_swing() - 0.6).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn proposed_period_is_always_within_bounds(
            ppt in 1u32..=1000,
            period_ms in 1u64..500,
            fills in proptest::collection::vec(0.0f64..1.0, 0..20),
        ) {
            let cfg = config();
            let mut est = PeriodEstimator::new(cfg);
            for f in fills {
                est.observe_fill(f);
            }
            let next = est.end_period(Proportion::from_ppt(ppt), Period::from_millis(period_ms));
            // Clamped either to the configured window or unchanged.
            prop_assert!(next.as_micros() >= cfg.min_period_us.min(period_ms * 1000));
            prop_assert!(next.as_micros() <= cfg.max_period_us.max(period_ms * 1000));
        }
    }
}
