//! The feedback-driven proportion allocator — the paper's primary
//! contribution.
//!
//! The adaptive controller (§3.3) sits between the progress monitors (the
//! symbiotic interfaces of `rrs-queue`) and the reservation scheduler
//! (`rrs-scheduler`).  Every controller period one cycle flows through the
//! staged control-plane pipeline of [`pipeline`]:
//!
//! ```text
//!   Sense ──▶ Classify ──▶ Estimate ──▶ Allocate ──▶ Place ──▶ Actuate
//!     │           │            │            │           │          │
//!  registry   taxonomy     PID + P'=kQ   squish /    CPU fit,  reservations
//!  samples,   (Figure 2)   (Figures      admit       migrate   + CPU, events
//!  usage                    3 & 4)       (§3.3)
//! ```
//!
//! 1. **Sense** samples each job's progress metrics through the
//!    meta-interface and picks up the dispatcher's usage feedback;
//! 2. **Classify** derives each job's class by the [`taxonomy`] of
//!    Figure 2 — real-time, aperiodic real-time, real-rate or
//!    miscellaneous — and pins reserved jobs' proportions and periods;
//! 3. **Estimate** computes the cumulative progress pressure `Q_t` via a
//!    PID control function ([`pressure`], Figure 3) and each adaptive
//!    job's new proportion `P'_t = k·Q_t`, reclaiming allocation from jobs
//!    that do not use what they were given ([`estimator`], Figure 4), and
//!    optionally adjusts periods to trade quantization error against
//!    jitter ([`period`]);
//! 4. **Allocate** detects overload against the machine-wide capacity
//!    (`threshold × CPUs`) and *squishes* real-rate and miscellaneous
//!    jobs by fair share or importance-weighted fair share ([`squish`]);
//! 5. **Place** assigns each job a CPU ([`config::PlacementConfig`]):
//!    least-loaded fit at admission, sticky placement in steady state,
//!    and threshold-triggered migration of one squishable job per cycle
//!    when the CPU load imbalance exceeds the configured bound — a no-op
//!    on the paper's single CPU;
//! 6. **Actuate** emits the reservations to apply (each tagged with its
//!    CPU) and raises quality exceptions when demand cannot be met
//!    ([`events`]).
//!
//! The stages share a reusable [`pipeline::CycleContext`] with
//! pre-allocated scratch buffers and operate on dense [`slot`]-indexed
//! job storage, so the steady-state cycle is allocation-free, `O(jobs)`,
//! and each stage is independently testable.  The [`controller::Controller`]
//! shell drives the pipeline via
//! [`controller::Controller::control_cycle_in_place`] (hot path, borrowed
//! output) or [`controller::Controller::control_cycle`] (convenience,
//! owned output).  Its own execution cost is modelled by
//! [`cost::ControllerCostModel`] so the Figure 5 overhead experiment can
//! be reproduced.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod controller;
pub mod cost;
pub mod estimator;
pub mod events;
pub mod handle;
pub mod period;
pub mod pipeline;
pub mod pressure;
pub mod slot;
pub mod squish;
pub mod taxonomy;
pub mod time;

pub use config::{ControllerConfig, PlacementConfig};
pub use controller::{
    Actuation, AdmitError, ControlOutput, Controller, JobId, MigratedJob, UsageSnapshot,
};
pub use cost::ControllerCostModel;
pub use estimator::ProportionEstimator;
pub use events::{ControllerEvent, QualityException};
pub use handle::JobHandle;
pub use period::PeriodEstimator;
pub use pipeline::CycleContext;
pub use pressure::PressureEstimator;
pub use slot::{JobSlot, SlotTable};
pub use squish::{squish_fair_share, squish_weighted, Importance, SquishPolicy};
pub use taxonomy::{JobClass, JobSpec};
pub use time::{Micros, SimTime};
