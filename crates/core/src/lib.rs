//! The feedback-driven proportion allocator — the paper's primary
//! contribution.
//!
//! The adaptive controller (§3.3) sits between the progress monitors (the
//! symbiotic interfaces of `rrs-queue`) and the reservation scheduler
//! (`rrs-scheduler`).  Every controller period it:
//!
//! 1. classifies each job by the [`taxonomy`] of Figure 2 — real-time,
//!    aperiodic real-time, real-rate or miscellaneous;
//! 2. samples each real-rate job's progress metrics and computes the
//!    cumulative progress pressure `Q_t` via a PID control function
//!    ([`pressure`], Figure 3);
//! 3. estimates each job's new proportion `P'_t = k·Q_t`, reclaiming
//!    allocation from jobs that do not use what they were given
//!    ([`estimator`], Figure 4);
//! 4. optionally adjusts aperiodic jobs' periods to trade quantization
//!    error against jitter ([`period`]);
//! 5. when the sum of desired allocations oversubscribes the CPU, performs
//!    admission control on real-time jobs and *squishes* real-rate and
//!    miscellaneous jobs by fair share or importance-weighted fair share
//!    ([`squish`]);
//! 6. raises quality exceptions when demand cannot be met ([`events`]).
//!
//! The [`controller::Controller`] type ties the steps together and exposes
//! a single [`controller::Controller::control_cycle`] entry point driven by
//! the simulator or the wall-clock executor.  Its own execution cost is
//! modelled by [`cost::ControllerCostModel`] so the Figure 5 overhead
//! experiment can be reproduced.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod controller;
pub mod cost;
pub mod estimator;
pub mod events;
pub mod period;
pub mod pressure;
pub mod squish;
pub mod taxonomy;

pub use config::ControllerConfig;
pub use controller::{Actuation, ControlOutput, Controller, JobId, UsageSnapshot};
pub use cost::ControllerCostModel;
pub use estimator::ProportionEstimator;
pub use events::{ControllerEvent, QualityException};
pub use period::PeriodEstimator;
pub use pressure::PressureEstimator;
pub use squish::{squish_fair_share, squish_weighted, Importance, SquishPolicy};
pub use taxonomy::{JobClass, JobSpec};
