//! Model of the controller's own execution cost.
//!
//! Figure 5 reports that the user-level controller's overhead grows
//! linearly with the number of controlled processes: a fit of
//! `y = 0.00066·x + 0.00057` CPU utilisation at a 10 ms controller period.
//! That corresponds to roughly 5.7 µs of fixed work per invocation plus
//! 6.6 µs per controlled process (reading its progress metrics from the
//! kernel, computing the new allocation and writing it back).  The cost
//! model reproduces that accounting so the simulator can charge the
//! controller for its own CPU use.

use serde::{Deserialize, Serialize};

/// Per-invocation execution cost of the controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControllerCostModel {
    /// Fixed cost per controller invocation, in microseconds.
    pub fixed_us: f64,
    /// Additional cost per controlled job, in microseconds.
    pub per_job_us: f64,
}

impl Default for ControllerCostModel {
    fn default() -> Self {
        // Calibrated against the Figure 5 fit at a 10 ms controller period:
        // intercept 0.00057 × 10 ms = 5.7 µs, slope 0.00066 × 10 ms = 6.6 µs.
        Self {
            fixed_us: 5.7,
            per_job_us: 6.6,
        }
    }
}

impl ControllerCostModel {
    /// Creates a cost model.
    pub fn new(fixed_us: f64, per_job_us: f64) -> Self {
        Self {
            fixed_us,
            per_job_us,
        }
    }

    /// A zero-cost model, for experiments that want to ignore controller
    /// overhead.
    pub fn free() -> Self {
        Self {
            fixed_us: 0.0,
            per_job_us: 0.0,
        }
    }

    /// Cost of one controller invocation over `jobs` controlled jobs, in
    /// microseconds.
    pub fn invocation_cost_us(&self, jobs: usize) -> f64 {
        self.fixed_us + self.per_job_us * jobs as f64
    }

    /// Steady-state CPU utilisation of the controller when it runs every
    /// `controller_period_s` seconds over `jobs` jobs (the quantity plotted
    /// on the Figure 5 y-axis).
    pub fn utilisation(&self, jobs: usize, controller_period_s: f64) -> f64 {
        if controller_period_s <= 0.0 {
            return 0.0;
        }
        (self.invocation_cost_us(jobs) * 1e-6) / controller_period_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn default_matches_figure_5_fit() {
        let m = ControllerCostModel::default();
        // Intercept at 0 jobs.
        assert!((m.utilisation(0, 0.010) - 0.00057).abs() < 1e-9);
        // Slope per job.
        let slope = m.utilisation(1, 0.010) - m.utilisation(0, 0.010);
        assert!((slope - 0.00066).abs() < 1e-9);
        // 40 jobs ≈ 2.7 % of the CPU, as quoted in the figure caption.
        let at_40 = m.utilisation(40, 0.010);
        assert!((at_40 - 0.027).abs() < 0.001, "got {at_40}");
    }

    #[test]
    fn free_model_costs_nothing() {
        let m = ControllerCostModel::free();
        assert_eq!(m.invocation_cost_us(100), 0.0);
        assert_eq!(m.utilisation(100, 0.01), 0.0);
    }

    #[test]
    fn zero_period_reports_zero_utilisation() {
        let m = ControllerCostModel::default();
        assert_eq!(m.utilisation(10, 0.0), 0.0);
    }

    proptest! {
        #[test]
        fn cost_is_linear_in_jobs(a in 0usize..100, b in 0usize..100) {
            let m = ControllerCostModel::default();
            let combined = m.invocation_cost_us(a + b);
            let split = m.invocation_cost_us(a) + m.invocation_cost_us(b) - m.fixed_us;
            prop_assert!((combined - split).abs() < 1e-9);
        }

        #[test]
        fn utilisation_is_monotone_in_jobs(jobs in 0usize..200) {
            let m = ControllerCostModel::default();
            prop_assert!(m.utilisation(jobs + 1, 0.01) >= m.utilisation(jobs, 0.01));
        }
    }
}
