//! The adaptive controller tying monitoring, estimation and actuation
//! together.
//!
//! Since the staged-pipeline refactor the controller is a thin shell: it
//! owns the dense slot-indexed job table ([`crate::slot::SlotTable`]), the
//! reusable [`CycleContext`] and output buffers, and drives the five
//! pipeline stages of [`crate::pipeline`] once per controller period.  The
//! steady-state entry point, [`Controller::control_cycle_in_place`],
//! performs no heap allocation once the scratch buffers have warmed up.

use crate::config::ControllerConfig;
use crate::estimator::ProportionEstimator;
use crate::events::{ControllerEvent, QualityException};
use crate::pipeline::{self, CycleContext, JobEntry, JobTable};
use crate::slot::JobSlot;
use crate::squish::{squish_into, Importance, SquishRequest, SquishScratch};
use crate::taxonomy::{JobClass, JobSpec};
use rrs_queue::{JobKey, MetricRegistry};
use rrs_scheduler::{CpuId, Proportion, Reservation};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifies a job to the controller.
///
/// A job is "a collection of cooperating threads"; in this reproduction each
/// controller job maps to one schedulable thread, and the same raw id is
/// used for the scheduler's `ThreadId` and the registry's `JobKey`.
///
/// `JobId` is the stable external name of a job.  Layers that talk to the
/// controller every cycle should prefer the dense [`JobSlot`] handle
/// returned by [`Controller::add_job`], which resolves in `O(1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId(pub u64);

impl JobId {
    /// The registry key corresponding to this job.
    pub fn key(self) -> JobKey {
        JobKey(self.0)
    }
}

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// A job's detached controller-side state, in transit between two
/// controller instances (the sharded machine's cross-shard migration
/// path).  Opaque: produced by [`Controller::extract_job`], consumed by
/// [`Controller::inject_job`].
#[derive(Debug)]
pub struct MigratedJob {
    job: JobId,
    entry: JobEntry,
}

impl MigratedJob {
    /// The migrating job's id.
    pub fn job(&self) -> JobId {
        self.job
    }

    /// The migrating job's spec, as registered.
    pub fn spec(&self) -> JobSpec {
        self.entry.spec
    }

    /// The grant the source controller last settled on.
    pub fn granted(&self) -> Proportion {
        self.entry.granted
    }
}

/// Per-job usage feedback the caller provides to each control cycle,
/// normally read from the dispatcher's accounting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UsageSnapshot {
    /// Fraction of the allocation the job used in its last completed
    /// period, in `[0, 1]`.
    pub usage_ratio: f64,
}

impl Default for UsageSnapshot {
    fn default() -> Self {
        Self { usage_ratio: 1.0 }
    }
}

/// One actuation: the reservation the scheduler should apply to a job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Actuation {
    /// The dense handle of the job whose reservation changes; consumer
    /// layers index their own side tables with it.
    pub slot: JobSlot,
    /// The job whose reservation changes.
    pub job: JobId,
    /// The new reservation.
    pub reservation: Reservation,
    /// The CPU the Place stage has the job on.  Consumers holding the
    /// thread on a different CPU should migrate it; on a single-CPU
    /// machine this is always `cpu0`.
    pub cpu: CpuId,
}

/// The result of one control cycle.
#[derive(Debug, Clone, Default)]
pub struct ControlOutput {
    /// Reservations to apply, one per managed job.
    pub actuations: Vec<Actuation>,
    /// Noteworthy events (squishes, quality exceptions, admissions).
    pub events: Vec<ControllerEvent>,
    /// Modelled execution cost of this controller invocation, in
    /// microseconds (Figure 5).
    pub cost_us: f64,
    /// Sum of the granted proportions, in parts per thousand.
    pub total_granted_ppt: u32,
}

impl ControlOutput {
    /// Looks up the actuation for a job, if any.
    pub fn actuation_for(&self, job: JobId) -> Option<Actuation> {
        self.actuations.iter().copied().find(|a| a.job == job)
    }

    /// Returns the quality exceptions raised this cycle.
    pub fn quality_exceptions(&self) -> Vec<QualityException> {
        self.events
            .iter()
            .filter_map(|e| match e {
                ControllerEvent::Quality(q) => Some(*q),
                _ => None,
            })
            .collect()
    }
}

/// Errors returned when registering jobs with the controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmitError {
    /// The job id is already registered.
    Duplicate(JobId),
    /// Admission control rejected a real-time reservation.
    Rejected {
        /// The proportion requested.
        requested: Proportion,
        /// The proportion available for real-time reservations.
        available: Proportion,
    },
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmitError::Duplicate(id) => write!(f, "{id} is already registered"),
            AdmitError::Rejected {
                requested,
                available,
            } => write!(
                f,
                "real-time admission rejected: requested {requested}, available {available}"
            ),
        }
    }
}

impl std::error::Error for AdmitError {}

/// The feedback-driven proportion allocator.
///
/// # Examples
///
/// ```
/// use rrs_core::{Controller, ControllerConfig, JobId, JobSpec, UsageSnapshot};
/// use rrs_queue::MetricRegistry;
///
/// let registry = MetricRegistry::new();
/// let mut controller = Controller::new(ControllerConfig::default(), registry);
/// let slot = controller.add_job(JobId(1), JobSpec::miscellaneous()).unwrap();
///
/// // Steady-state path: record usage by slot, run the pipeline in place.
/// controller.record_usage(slot, UsageSnapshot { usage_ratio: 1.0 });
/// let out = controller.control_cycle_in_place(0.01);
/// assert_eq!(out.actuations.len(), 1);
/// assert_eq!(out.actuations[0].slot, slot);
/// ```
#[derive(Debug)]
pub struct Controller {
    config: ControllerConfig,
    registry: MetricRegistry,
    estimator: ProportionEstimator,
    jobs: JobTable,
    ctx: CycleContext,
    output: ControlOutput,
    last_cycle: Option<f64>,
    cycles: u64,
    /// Cycles that ran the full staged pipeline.
    full_cycles: u64,
    /// Cycles served by the incremental dirty-set path.
    incremental_cycles: u64,
    /// Measure per-stage wall-clock time inside full cycles (telemetry).
    stage_timing: bool,
    /// Per-stage nanoseconds of the last *timed* full cycle, in pipeline
    /// order (sense, classify, estimate, allocate, place, actuate).
    last_stage_ns: [u64; 6],
    /// Cumulative per-stage nanoseconds over all timed full cycles.
    stage_total_ns: [u64; 6],
    incr: IncrState,
}

/// Caches and scratch for [`ControllerConfig::incremental`] cycles.
///
/// The caches mirror what a full staged cycle derives from scratch every
/// time: the registry version the per-job `has_metric` flags were read at,
/// the cycle length, the fixed-reservation total, the committed granted
/// total and the per-CPU granted load.  A full cycle rebuilds all of them;
/// an incremental cycle maintains them under the changes it applies.
#[derive(Debug)]
struct IncrState {
    /// A structural change (job add/remove, importance, CPU count)
    /// invalidated the caches; the next cycle must be full.
    structural_dirty: bool,
    /// Registry version the cached `has_metric` flags were read at.
    registry_version: u64,
    /// Cycle length of the last full cycle (bitwise-compared).
    last_dt: f64,
    /// Sum of fixed (real-time) reservations, in parts per thousand.
    fixed_total_ppt: u32,
    /// Sum of all committed grants, in parts per thousand.
    granted_total_ppt: u32,
    /// Committed granted load per CPU, in parts per thousand.
    cpu_load: Vec<u64>,
    // Reusable scratch for the incremental cycle.  Recomputed jobs carry
    // the cycle's `Q_t` as captured before any reclaim damping, matching
    // what the staged path records in `CycleRecord::pressure_q`.
    recomputed: Vec<(JobSlot, JobId, f64)>,
    requests: Vec<SquishRequest>,
    request_slots: Vec<(JobSlot, JobId)>,
    grants: Vec<Proportion>,
    squish_scratch: SquishScratch,
}

impl Default for IncrState {
    fn default() -> Self {
        Self {
            structural_dirty: true,
            registry_version: 0,
            last_dt: 0.0,
            fixed_total_ppt: 0,
            granted_total_ppt: 0,
            cpu_load: Vec::new(),
            recomputed: Vec::new(),
            requests: Vec::new(),
            request_slots: Vec::new(),
            grants: Vec::new(),
            squish_scratch: SquishScratch::default(),
        }
    }
}

impl Controller {
    /// Creates a controller over the given metric registry.
    pub fn new(config: ControllerConfig, registry: MetricRegistry) -> Self {
        Self {
            estimator: ProportionEstimator::new(&config),
            config,
            registry,
            jobs: JobTable::new(),
            ctx: CycleContext::new(),
            output: {
                let mut output = ControlOutput::default();
                // Room for a squish event, a migration and a couple of
                // quality exceptions before the event buffer ever grows,
                // so a rare first-ever event does not allocate mid-cycle.
                output.events.reserve(4);
                output
            },
            last_cycle: None,
            cycles: 0,
            full_cycles: 0,
            incremental_cycles: 0,
            stage_timing: false,
            last_stage_ns: [0; 6],
            stage_total_ns: [0; 6],
            incr: IncrState::default(),
        }
    }

    /// The controller's configuration.
    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }

    /// Changes the number of CPUs the Place stage spreads jobs over
    /// (clamped to `1..=PlacementConfig::MAX_CPUS`), mid-run.
    ///
    /// Growing the machine takes effect on the next control cycle: the
    /// Allocate stage's capacity (`overload_threshold × CPUs`) widens and
    /// the Place stage starts fitting jobs onto the new CPUs.  Shrinking
    /// remaps any job placed on a now-out-of-range CPU on the next cycle;
    /// callers driving a real [`rrs_scheduler::Machine`] should only ever
    /// grow, since the machine layer has no hot-remove.
    pub fn set_cpus(&mut self, cpus: usize) {
        self.config.placement.cpus = cpus.clamp(1, crate::config::PlacementConfig::MAX_CPUS);
        self.incr.structural_dirty = true;
    }

    /// The metric registry the controller samples.
    pub fn registry(&self) -> &MetricRegistry {
        &self.registry
    }

    /// Number of managed jobs.
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// Number of control cycles executed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// `(full, incremental)` cycle counts: how many cycles ran the full
    /// staged pipeline versus the dirty-set incremental path.  Their sum
    /// is [`Controller::cycles`]; `incremental / total` is the
    /// incremental-cycle skip rate telemetry reports.
    pub fn cycle_counts(&self) -> (u64, u64) {
        (self.full_cycles, self.incremental_cycles)
    }

    /// Enables (or disables) per-stage wall-clock timing inside full
    /// cycles.  Off by default: the steady-state cycle stays free of
    /// clock reads.
    pub fn set_stage_timing(&mut self, on: bool) {
        self.stage_timing = on;
    }

    /// Per-stage nanoseconds of the last timed full cycle, in pipeline
    /// order (sense, classify, estimate, allocate, place, actuate).  All
    /// zero until a full cycle runs with stage timing enabled.
    pub fn last_stage_ns(&self) -> [u64; 6] {
        self.last_stage_ns
    }

    /// Cumulative per-stage nanoseconds over all timed full cycles.
    pub fn stage_total_ns(&self) -> [u64; 6] {
        self.stage_total_ns
    }

    /// Ids of all managed jobs, in id order.
    pub fn job_ids(&self) -> Vec<JobId> {
        self.jobs.ids().collect()
    }

    /// The dense slot currently assigned to a job id.
    pub fn slot_of(&self, job: JobId) -> Option<JobSlot> {
        self.jobs.slot_of(job)
    }

    /// The job id stored at a slot, if the slot is live and current.
    pub fn job_of(&self, slot: JobSlot) -> Option<JobId> {
        self.jobs.id_of(slot)
    }

    /// Upper bound (exclusive) of live slot indices; consumer layers size
    /// their slot-indexed side tables with this.
    pub fn slot_capacity(&self) -> usize {
        self.jobs.dense_len()
    }

    /// The class the controller currently assigns to a job.
    ///
    /// A job registered without a progress metric is reclassified as
    /// real-rate as soon as a metric is attached to it in the registry, and
    /// vice versa, so the class can change over a job's lifetime.
    pub fn job_class(&self, job: JobId) -> Option<JobClass> {
        let entry = self.jobs.get_by_id(job)?;
        Some(self.effective_spec(job, entry.spec).classify())
    }

    /// The proportion most recently granted to a job.
    pub fn granted(&self, job: JobId) -> Option<Proportion> {
        self.jobs.get_by_id(job).map(|e| e.granted)
    }

    /// The proportion most recently granted to the job at `slot`.
    pub fn granted_at(&self, slot: JobSlot) -> Option<Proportion> {
        self.jobs.get(slot).map(|e| e.granted)
    }

    /// Sum of every job's current grant, in parts per thousand — the
    /// sharded machine's per-shard load metric.  One allocation-free pass
    /// over the slot table.
    pub fn granted_total_ppt(&self) -> u64 {
        self.jobs
            .iter()
            .map(|(_, _, e)| e.granted.ppt() as u64)
            .sum()
    }

    /// Visits every live job in slot order with its id, effective class
    /// and current grant, without allocating — the rebalancer's candidate
    /// enumeration.
    pub fn for_each_job(&self, mut f: impl FnMut(JobId, JobClass, Proportion)) {
        for (_, id, e) in self.jobs.iter() {
            f(id, e.spec.classify(), e.granted);
        }
    }

    /// Registers a job and returns its dense slot.
    ///
    /// The importance weight is read from the spec
    /// ([`JobSpec::with_importance`]).
    pub fn add_job(&mut self, job: JobId, spec: JobSpec) -> Result<JobSlot, AdmitError> {
        self.add_job_with_importance(job, spec, spec.importance)
    }

    /// Registers a job with an explicit importance weight and returns its
    /// dense slot.
    ///
    /// Real-time jobs (proportion and period both specified) are subject to
    /// admission control: if the requested proportion does not fit under the
    /// overload threshold together with the already-admitted real-time jobs,
    /// the registration is rejected.
    pub fn add_job_with_importance(
        &mut self,
        job: JobId,
        spec: JobSpec,
        importance: Importance,
    ) -> Result<JobSlot, AdmitError> {
        if self.jobs.slot_of(job).is_some() {
            return Err(AdmitError::Duplicate(job));
        }
        let class = spec.classify();
        let cpu = if matches!(class, JobClass::RealTime | JobClass::AperiodicRealTime) {
            // Real-time reservations must fit on one specific CPU: admit
            // against the CPU with the lightest fixed load (least-loaded
            // fit), which on a single CPU is the paper's original test.
            let requested = spec.proportion.unwrap_or(Proportion::ZERO);
            let (cpu, reserved) = self.least_loaded_cpu(true);
            let available = Proportion::from_ppt(
                (self.config.overload_threshold_ppt as u64).saturating_sub(reserved) as u32,
            );
            if requested.ppt() > available.ppt() {
                return Err(AdmitError::Rejected {
                    requested,
                    available,
                });
            }
            cpu
        } else {
            // Adaptive jobs go wherever the granted load is lightest.
            self.least_loaded_cpu(false).0
        };
        let mut entry = JobEntry::new(spec, importance, &self.config);
        entry.cpu = cpu;
        self.incr.structural_dirty = true;
        Ok(self
            .jobs
            .insert(job, entry)
            .expect("duplicate ids were rejected above"))
    }

    /// Removes a job and detaches its registry entries.
    pub fn remove_job(&mut self, job: JobId) -> bool {
        let removed = self.jobs.remove(job).is_some();
        if removed {
            self.registry.unregister_job(job.key());
            self.incr.structural_dirty = true;
        }
        removed
    }

    /// Removes the job at `slot` (if live) and detaches its registry
    /// entries.
    pub fn remove_slot(&mut self, slot: JobSlot) -> bool {
        match self.jobs.id_of(slot) {
            Some(job) => self.remove_job(job),
            None => false,
        }
    }

    /// Detaches a job's full controller-side state — spec, estimators,
    /// grant, usage feedback — without unregistering its queue-metric
    /// attachments, so the job can be re-registered on a *different*
    /// controller instance (the sharded machine's cross-shard migration
    /// path).  Returns `None` if the job is unknown.  The counterpart of
    /// [`Controller::inject_job`]; use [`Controller::remove_job`] when the
    /// job is actually leaving the system.
    pub fn extract_job(&mut self, job: JobId) -> Option<MigratedJob> {
        let (_, entry) = self.jobs.remove(job)?;
        self.incr.structural_dirty = true;
        Some(MigratedJob { job, entry })
    }

    /// Re-registers a job previously detached with
    /// [`Controller::extract_job`] (possibly from another controller) on
    /// an explicit CPU, preserving its estimator and grant state.
    ///
    /// No admission control runs here — the caller (the rebalancer) has
    /// already ruled on capacity.  Fails only on a duplicate id.
    pub fn inject_job(&mut self, migrated: MigratedJob, cpu: CpuId) -> Result<JobSlot, AdmitError> {
        let MigratedJob { job, mut entry } = migrated;
        if self.jobs.slot_of(job).is_some() {
            return Err(AdmitError::Duplicate(job));
        }
        entry.cpu = cpu;
        // The receiving controller has never cycled over this job: force a
        // recompute on its next full cycle.
        entry.settled = false;
        self.incr.structural_dirty = true;
        Ok(self
            .jobs
            .insert(job, entry)
            .expect("duplicate ids were rejected above"))
    }

    /// Changes a job's importance weight.
    pub fn set_importance(&mut self, job: JobId, importance: Importance) -> bool {
        match self.jobs.get_by_id_mut(job) {
            Some(e) => {
                e.importance = importance;
                self.incr.structural_dirty = true;
                true
            }
            None => false,
        }
    }

    /// Records usage feedback for the job at `slot`.  Returns `false` if
    /// the slot is stale.
    ///
    /// Snapshots are sticky: the recorded ratio persists until overwritten,
    /// so callers only need to report *changes*.  A job that has never
    /// reported is assumed to have used its full allocation.
    pub fn record_usage(&mut self, slot: JobSlot, usage: UsageSnapshot) -> bool {
        match self.jobs.get_mut(slot) {
            Some(e) => {
                if e.usage.usage_ratio.to_bits() != usage.usage_ratio.to_bits() {
                    e.usage = usage;
                    e.usage_dirty = true;
                }
                true
            }
            None => false,
        }
    }

    /// The least-loaded CPU and its load in parts per thousand — by fixed
    /// reservations when admitting a real-time job (`fixed_only`), by
    /// granted proportions otherwise.  One pass over the job table into a
    /// per-CPU accumulator (the admission path may allocate; only control
    /// cycles are allocation-free).  Lowest id wins ties, so a single-CPU
    /// machine always answers `cpu0`.
    fn least_loaded_cpu(&self, fixed_only: bool) -> (CpuId, u64) {
        let cpus = self.config.placement.cpu_count();
        let mut loads = vec![0u64; cpus];
        for (_, _, e) in self.jobs.iter() {
            let Some(load) = loads.get_mut(e.cpu.index()) else {
                // A stale CPU from a shrunken machine; the Place stage
                // pulls the job back on next cycle.
                continue;
            };
            if fixed_only {
                if !e.spec.classify().is_squishable() {
                    *load += e.spec.proportion.map(|p| p.ppt() as u64).unwrap_or(0);
                }
            } else {
                *load += e.granted.ppt() as u64;
            }
        }
        let mut best = CpuId::ZERO;
        let mut best_load = u64::MAX;
        for (i, &load) in loads.iter().enumerate() {
            if load < best_load {
                best_load = load;
                best = CpuId(i as u32);
            }
        }
        (best, best_load)
    }

    /// The CPU the Place stage currently has a job on.
    pub fn cpu_of(&self, job: JobId) -> Option<CpuId> {
        self.jobs.get_by_id(job).map(|e| e.cpu)
    }

    /// The CPU the Place stage currently has the job at `slot` on.
    pub fn cpu_of_slot(&self, slot: JobSlot) -> Option<CpuId> {
        self.jobs.get(slot).map(|e| e.cpu)
    }

    /// The spec with `has_progress_metric` refreshed from the registry, so
    /// that attaching a queue at run time promotes a miscellaneous job to
    /// real-rate.
    fn effective_spec(&self, job: JobId, spec: JobSpec) -> JobSpec {
        spec.with_progress_metric(self.registry.has_attachments(job.key()))
    }

    /// Runs one control cycle at time `now_s` (seconds) and returns a
    /// reference to the reused output buffers.
    ///
    /// This is the steady-state entry point: once the scratch buffers have
    /// warmed up it performs no heap allocation.  Usage feedback is taken
    /// from the sticky snapshots recorded via [`Controller::record_usage`]
    /// (full usage when none was ever recorded).
    ///
    /// With [`ControllerConfig::incremental`] enabled and no structural
    /// change pending, the cycle recomputes only jobs whose inputs changed
    /// and emits actuations only for jobs whose `(grant, period, cpu)`
    /// actually moved; otherwise it runs the full staged pipeline.
    pub fn control_cycle_in_place(&mut self, now_s: f64) -> &ControlOutput {
        let dt = match self.last_cycle {
            Some(prev) if now_s > prev => now_s - prev,
            _ => self.config.controller_period_s,
        };
        self.control_cycle_with_dt(now_s, dt)
    }

    /// Runs one control cycle at `now_s` with an explicitly supplied cycle
    /// length `dt` (seconds; non-positive falls back to the configured
    /// period).
    ///
    /// Callers stepping on an exact grid should prefer this over
    /// [`Controller::control_cycle_in_place`]: a `dt` derived from integer
    /// ticks is bitwise-identical every cycle, whereas differences of
    /// accumulated floating-point timestamps jitter in the last ulp — and
    /// [`ControllerConfig::incremental`] falls back to a full cycle
    /// whenever `dt` is not bitwise-equal to the previous one.
    pub fn control_cycle_with_dt(&mut self, now_s: f64, dt: f64) -> &ControlOutput {
        let dt = if dt > 0.0 {
            dt
        } else {
            self.config.controller_period_s
        };
        self.last_cycle = Some(now_s);
        self.cycles += 1;

        if self.needs_full_cycle(dt) {
            self.full_cycles += 1;
            self.full_cycle(now_s, dt);
        } else {
            self.incremental_cycles += 1;
            self.incremental_cycle(now_s, dt);
        }
        &self.output
    }

    /// Whether the next cycle must run the full staged pipeline.
    fn needs_full_cycle(&self, dt: f64) -> bool {
        !self.config.incremental
            || self.config.period_estimation
            || self.incr.structural_dirty
            || self.registry.version() != self.incr.registry_version
            || dt.to_bits() != self.incr.last_dt.to_bits()
    }

    /// The classic staged pipeline, plus (in incremental mode) a rebuild of
    /// every incremental cache from the cycle's context.
    fn full_cycle(&mut self, now_s: f64, dt: f64) {
        self.ctx.begin(now_s, dt);
        if self.stage_timing {
            // allow(determinism): opt-in stage timing (off by default)
            // measures wall-clock cost per pipeline stage for telemetry;
            // the durations feed TelemetrySnapshot only and never a
            // control decision.  Allowlisted in analysis.toml.
            let mut ns = [0u64; 6];
            let mut mark = std::time::Instant::now();
            let mut lap = |ns: &mut u64| {
                let now = std::time::Instant::now();
                *ns = now.duration_since(mark).as_nanos() as u64;
                mark = now;
            };
            pipeline::sense(
                &self.registry,
                &mut self.jobs,
                self.config.period_estimation,
                &mut self.ctx,
            );
            lap(&mut ns[0]);
            pipeline::classify(&self.config, &mut self.jobs, &mut self.ctx);
            lap(&mut ns[1]);
            pipeline::estimate(&self.config, &self.estimator, &mut self.jobs, &mut self.ctx);
            lap(&mut ns[2]);
            pipeline::allocate(&self.config, &mut self.ctx);
            lap(&mut ns[3]);
            pipeline::place(&self.config, &mut self.jobs, &mut self.ctx);
            lap(&mut ns[4]);
            pipeline::actuate(&self.config, &mut self.jobs, &self.ctx, &mut self.output);
            lap(&mut ns[5]);
            self.last_stage_ns = ns;
            for (total, n) in self.stage_total_ns.iter_mut().zip(ns) {
                *total += n;
            }
        } else {
            pipeline::sense(
                &self.registry,
                &mut self.jobs,
                self.config.period_estimation,
                &mut self.ctx,
            );
            pipeline::classify(&self.config, &mut self.jobs, &mut self.ctx);
            pipeline::estimate(&self.config, &self.estimator, &mut self.jobs, &mut self.ctx);
            pipeline::allocate(&self.config, &mut self.ctx);
            pipeline::place(&self.config, &mut self.jobs, &mut self.ctx);
            pipeline::actuate(&self.config, &mut self.jobs, &self.ctx, &mut self.output);
        }

        if self.config.incremental {
            let incr = &mut self.incr;
            incr.registry_version = self.registry.version();
            incr.last_dt = dt;
            incr.fixed_total_ppt = self.ctx.fixed_total_ppt;
            incr.granted_total_ppt = self.output.total_granted_ppt;
            incr.cpu_load.clone_from(&self.ctx.cpu_load);
            for record in &self.ctx.records {
                let entry = self.jobs.get_mut(record.slot).expect("record slot is live");
                entry.has_metric = record.has_metric;
                entry.desired = record.desired;
                entry.settled = false;
                entry.usage_dirty = false;
            }
            incr.structural_dirty = false;
        }
    }

    /// One incremental cycle: recompute only jobs whose inputs changed,
    /// re-squish only when some desired proportion moved, scan for a
    /// migration only when the cached per-CPU load gap exceeds the bound,
    /// and emit actuations only for jobs whose committed `(grant, period,
    /// cpu)` changed.
    ///
    /// Committed state (grants, desires, PID state, placements) evolves
    /// exactly as under [`Controller::full_cycle`]: a job is skipped only
    /// after a recompute proved itself a bitwise no-op
    /// ([`crate::PressureEstimator::state_fingerprint`]), and every input a
    /// recompute reads (sensed pressure, usage, cycle length, committed
    /// grant, importance, spec, registry attachments) is guarded by a
    /// change check or a full-cycle fallback trigger.
    fn incremental_cycle(&mut self, now_s: f64, dt: f64) {
        let Self {
            config,
            registry,
            estimator,
            jobs,
            output,
            incr,
            ..
        } = self;
        output.actuations.clear();
        output.events.clear();
        incr.recomputed.clear();

        // Fused sense / classify / estimate over the dirty set.  Metricless
        // jobs never touch the registry (their cached `has_metric` is valid
        // while the registry version is unchanged, which `needs_full_cycle`
        // guarantees here).
        let mut desired_changed = false;
        for (slot, job, entry) in jobs.iter_mut() {
            let class = entry.spec.with_progress_metric(entry.has_metric).classify();
            if !class.is_squishable() {
                // Fixed reservations cannot change between structural
                // events, and those force a full cycle.
                continue;
            }
            let summed = match class {
                JobClass::RealRate => registry
                    .summed_pressure(job.key())
                    .unwrap_or(config.misc_pressure),
                _ => config.misc_pressure,
            };
            if entry.settled
                && !entry.usage_dirty
                && summed.to_bits() == entry.pressure.last_summed_pressure().to_bits()
            {
                continue;
            }

            let before = entry.pressure.state_fingerprint();
            let q = entry.pressure.update(summed, dt);
            let outcome = estimator.estimate(entry.granted, q, entry.usage.usage_ratio);
            if outcome.reclaimed {
                let target = if entry.granted.ppt() > 0 {
                    outcome.desired.ppt() as f64 / entry.granted.ppt() as f64
                } else {
                    0.0
                };
                entry.pressure.scale_state(target.clamp(0.0, 1.0));
            }
            if entry.spec.period.is_none() {
                entry.period = config.default_period;
            }
            let same_desired = outcome.desired == entry.desired;
            if !same_desired {
                desired_changed = true;
                entry.desired = outcome.desired;
            }
            // The recompute was a bitwise no-op: repeating it with the same
            // inputs stays a no-op, so the job may be skipped until an
            // input changes.
            entry.settled = same_desired && entry.pressure.state_fingerprint() == before;
            entry.usage_dirty = false;
            incr.recomputed.push((slot, job, q));
        }

        // Allocate: the squish is a pure function of (desires, importances,
        // available); nothing changed unless some desired moved.
        if desired_changed {
            let capacity_ppt = config.overload_threshold_ppt * config.placement.cpu_count() as u32;
            let available_ppt = capacity_ppt.saturating_sub(incr.fixed_total_ppt);
            incr.requests.clear();
            incr.request_slots.clear();
            let mut desired_total_ppt: u64 = 0;
            for (slot, job, entry) in jobs.iter() {
                let class = entry.spec.with_progress_metric(entry.has_metric).classify();
                if !class.is_squishable() {
                    continue;
                }
                incr.requests.push(SquishRequest {
                    desired: entry.desired,
                    importance: entry.importance,
                    floor: config.min_proportion,
                });
                incr.request_slots.push((slot, job));
                desired_total_ppt += entry.desired.ppt() as u64;
            }
            if desired_total_ppt > available_ppt as u64 {
                output.events.push(ControllerEvent::Squished {
                    desired_total_ppt,
                    available_ppt,
                });
                squish_into(
                    config.squish_policy,
                    &incr.requests,
                    available_ppt,
                    &mut incr.squish_scratch,
                    &mut incr.grants,
                );
            } else {
                incr.grants.clear();
                incr.grants.extend(incr.requests.iter().map(|r| r.desired));
            }
            for (&(slot, job), &grant) in incr.request_slots.iter().zip(incr.grants.iter()) {
                let entry = jobs.get_mut(slot).expect("request slot is live");
                if grant == entry.granted {
                    continue;
                }
                incr.granted_total_ppt = incr.granted_total_ppt + grant.ppt() - entry.granted.ppt();
                let load = &mut incr.cpu_load[entry.cpu.index()];
                *load = *load - entry.granted.ppt() as u64 + grant.ppt() as u64;
                entry.granted = grant;
                // The grant is an input of the next recompute.
                entry.settled = false;
                output.actuations.push(Actuation {
                    slot,
                    job,
                    reservation: Reservation::new(grant, entry.period),
                    cpu: entry.cpu,
                });
            }
        }

        // Place: the cached per-CPU loads are current; run the candidate
        // scan only when the imbalance bound is actually exceeded.
        let cpus = config.placement.cpu_count();
        if cpus > 1 {
            let (mut max_c, mut min_c) = (0usize, 0usize);
            for (i, &load) in incr.cpu_load.iter().enumerate() {
                if load > incr.cpu_load[max_c] {
                    max_c = i;
                }
                if load < incr.cpu_load[min_c] {
                    min_c = i;
                }
            }
            let gap = incr.cpu_load[max_c] - incr.cpu_load[min_c];
            if gap > config.placement.imbalance_threshold_ppt as u64 {
                let mut best: Option<(u64, JobSlot, JobId)> = None;
                for (slot, job, entry) in jobs.iter() {
                    if entry.cpu.index() != max_c {
                        continue;
                    }
                    let class = entry.spec.with_progress_metric(entry.has_metric).classify();
                    if !class.is_squishable() {
                        continue;
                    }
                    let g = entry.granted.ppt() as u64;
                    if g == 0 || g >= gap {
                        continue;
                    }
                    let dist = g.abs_diff(gap / 2);
                    if best.is_none_or(|(d, _, _)| dist < d) {
                        best = Some((dist, slot, job));
                    }
                }
                if let Some((_, slot, job)) = best {
                    let entry = jobs.get_mut(slot).expect("candidate slot is live");
                    let from = entry.cpu;
                    let to = CpuId(min_c as u32);
                    entry.cpu = to;
                    let g = entry.granted.ppt() as u64;
                    incr.cpu_load[from.index()] -= g;
                    incr.cpu_load[to.index()] += g;
                    output
                        .events
                        .push(ControllerEvent::Migrated { job, from, to });
                    // Carry the new CPU on this cycle's actuation for the
                    // job, patching the grant-change one if it exists.
                    let reservation = Reservation::new(entry.granted, entry.period);
                    match output.actuations.iter_mut().find(|a| a.slot == slot) {
                        Some(a) => a.cpu = to,
                        None => output.actuations.push(Actuation {
                            slot,
                            job,
                            reservation,
                            cpu: to,
                        }),
                    }
                }
            }
        }

        // Quality exceptions for the jobs this cycle actually recomputed.
        for &(slot, job, q) in &incr.recomputed {
            let entry = jobs.get(slot).expect("recomputed slot is live");
            if entry.granted.ppt() < entry.desired.ppt()
                && q.abs() >= config.quality_exception_pressure
            {
                output
                    .events
                    .push(ControllerEvent::Quality(QualityException {
                        job,
                        desired: entry.desired,
                        granted: entry.granted,
                        pressure: q,
                        time: now_s,
                    }));
            }
        }

        output.total_granted_ppt = incr.granted_total_ppt;
        output.cost_us = config.cost_model.invocation_cost_us(jobs.len());
    }

    /// Runs one control cycle at time `now_s` (seconds), with usage
    /// feedback supplied as a map, and returns an owned copy of the output.
    ///
    /// Convenience wrapper over [`Controller::record_usage`] +
    /// [`Controller::control_cycle_in_place`] for callers that are not on
    /// the hot path; jobs missing from the map are assumed to have used
    /// their full allocation.
    pub fn control_cycle(
        &mut self,
        now_s: f64,
        usage: &BTreeMap<JobId, UsageSnapshot>,
    ) -> ControlOutput {
        for (&job, &snapshot) in usage {
            if let Some(slot) = self.jobs.slot_of(job) {
                self.record_usage(slot, snapshot);
            }
        }
        self.control_cycle_in_place(now_s).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rrs_queue::{BoundedBuffer, Role};
    use rrs_scheduler::Period;
    use std::sync::Arc;

    fn controller() -> (Controller, MetricRegistry) {
        let registry = MetricRegistry::new();
        let c = Controller::new(ControllerConfig::default(), registry.clone());
        (c, registry)
    }

    fn run_cycles(c: &mut Controller, n: usize, dt: f64) -> ControlOutput {
        let usage = BTreeMap::new();
        let mut out = ControlOutput::default();
        for i in 1..=n {
            out = c.control_cycle(i as f64 * dt, &usage);
        }
        out
    }

    #[test]
    fn add_and_remove_jobs() {
        let (mut c, _reg) = controller();
        c.add_job(JobId(1), JobSpec::miscellaneous()).unwrap();
        assert_eq!(
            c.add_job(JobId(1), JobSpec::miscellaneous()),
            Err(AdmitError::Duplicate(JobId(1)))
        );
        assert_eq!(c.job_count(), 1);
        assert!(c.remove_job(JobId(1)));
        assert!(!c.remove_job(JobId(1)));
    }

    #[test]
    fn slots_resolve_both_ways_and_go_stale_on_removal() {
        let (mut c, _reg) = controller();
        let slot = c.add_job(JobId(7), JobSpec::miscellaneous()).unwrap();
        assert_eq!(c.slot_of(JobId(7)), Some(slot));
        assert_eq!(c.job_of(slot), Some(JobId(7)));
        assert!(c.granted_at(slot).is_some());
        assert!(c.remove_slot(slot));
        assert_eq!(c.job_of(slot), None, "slot is stale after removal");
        assert!(!c.record_usage(slot, UsageSnapshot::default()));
        // The freed slot index is reused under a fresh generation.
        let next = c.add_job(JobId(8), JobSpec::miscellaneous()).unwrap();
        assert_eq!(next.index(), slot.index());
        assert_ne!(next, slot);
        assert_eq!(c.granted_at(slot), None);
    }

    #[test]
    fn real_time_job_keeps_its_reservation() {
        let (mut c, _reg) = controller();
        let spec = JobSpec::real_time(Proportion::from_ppt(300), Period::from_millis(20));
        c.add_job(JobId(1), spec).unwrap();
        let out = run_cycles(&mut c, 5, 0.01);
        let a = out.actuation_for(JobId(1)).unwrap();
        assert_eq!(a.reservation.proportion.ppt(), 300);
        assert_eq!(a.reservation.period, Period::from_millis(20));
        assert_eq!(c.job_class(JobId(1)), Some(JobClass::RealTime));
    }

    #[test]
    fn aperiodic_real_time_gets_default_period() {
        let (mut c, _reg) = controller();
        c.add_job(
            JobId(1),
            JobSpec::aperiodic_real_time(Proportion::from_ppt(200)),
        )
        .unwrap();
        let out = run_cycles(&mut c, 1, 0.01);
        let a = out.actuation_for(JobId(1)).unwrap();
        assert_eq!(a.reservation.proportion.ppt(), 200);
        assert_eq!(a.reservation.period, Period::from_millis(30));
    }

    #[test]
    fn real_time_admission_control_rejects_oversubscription() {
        let (mut c, _reg) = controller();
        c.add_job(
            JobId(1),
            JobSpec::real_time(Proportion::from_ppt(800), Period::from_millis(10)),
        )
        .unwrap();
        let err = c
            .add_job(
                JobId(2),
                JobSpec::real_time(Proportion::from_ppt(300), Period::from_millis(10)),
            )
            .unwrap_err();
        assert!(matches!(err, AdmitError::Rejected { .. }));
        // A real-rate job is always admitted: it will be squished instead.
        c.add_job(JobId(3), JobSpec::real_rate()).unwrap();
    }

    #[test]
    fn consumer_of_full_queue_gains_allocation() {
        let (mut c, reg) = controller();
        let queue = Arc::new(BoundedBuffer::<u8>::new("q", 10));
        for i in 0..10 {
            queue.try_push(i).unwrap();
        }
        reg.register(JobKey(1), Role::Consumer, queue);
        c.add_job(JobId(1), JobSpec::real_rate()).unwrap();

        let first = run_cycles(&mut c, 1, 0.01);
        let later = run_cycles(&mut c, 30, 0.01);
        let p_first = first
            .actuation_for(JobId(1))
            .unwrap()
            .reservation
            .proportion;
        let p_later = later
            .actuation_for(JobId(1))
            .unwrap()
            .reservation
            .proportion;
        assert!(
            p_later.ppt() > p_first.ppt(),
            "allocation should grow under persistent positive pressure ({} -> {})",
            p_first.ppt(),
            p_later.ppt()
        );
    }

    #[test]
    fn producer_into_full_queue_loses_allocation() {
        let (mut c, reg) = controller();
        let queue = Arc::new(BoundedBuffer::<u8>::new("q", 10));
        for i in 0..10 {
            queue.try_push(i).unwrap();
        }
        reg.register(JobKey(1), Role::Producer, queue);
        c.add_job(JobId(1), JobSpec::real_rate()).unwrap();
        let out = run_cycles(&mut c, 30, 0.01);
        let p = out.actuation_for(JobId(1)).unwrap().reservation.proportion;
        assert_eq!(p, ControllerConfig::default().min_proportion);
    }

    #[test]
    fn balanced_queue_exerts_no_pressure() {
        let (mut c, reg) = controller();
        let queue = Arc::new(BoundedBuffer::<u8>::new("q", 10));
        for i in 0..5 {
            queue.try_push(i).unwrap();
        }
        reg.register(JobKey(1), Role::Consumer, queue);
        c.add_job(JobId(1), JobSpec::real_rate()).unwrap();
        let out = run_cycles(&mut c, 20, 0.01);
        let p = out.actuation_for(JobId(1)).unwrap().reservation.proportion;
        // No pressure: the allocation stays near the bottom.
        assert!(p.ppt() <= 50, "got {}", p.ppt());
    }

    #[test]
    fn miscellaneous_job_grows_until_squished() {
        let (mut c, _reg) = controller();
        c.add_job(JobId(1), JobSpec::miscellaneous()).unwrap();
        let out = run_cycles(&mut c, 200, 0.01);
        let p = out.actuation_for(JobId(1)).unwrap().reservation.proportion;
        // Alone on the machine it should end up with a large fraction,
        // bounded by the overload threshold.
        assert!(p.ppt() > 500, "got {}", p.ppt());
        assert!(p.ppt() <= ControllerConfig::default().overload_threshold_ppt);
    }

    #[test]
    fn squish_event_raised_under_overload() {
        let (mut c, reg) = controller();
        // Two greedy jobs: a misc hog and a consumer of a full queue.
        c.add_job(JobId(1), JobSpec::miscellaneous()).unwrap();
        let queue = Arc::new(BoundedBuffer::<u8>::new("q", 4));
        for i in 0..4 {
            queue.try_push(i).unwrap();
        }
        reg.register(JobKey(2), Role::Consumer, queue);
        c.add_job(JobId(2), JobSpec::real_rate()).unwrap();

        let usage = BTreeMap::new();
        let mut squished = false;
        let mut last_total = 0;
        for i in 1..=300 {
            let out = c.control_cycle(i as f64 * 0.01, &usage);
            last_total = out.total_granted_ppt;
            if out
                .events
                .iter()
                .any(|e| matches!(e, ControllerEvent::Squished { .. }))
            {
                squished = true;
            }
        }
        assert!(squished, "two greedy jobs must eventually oversubscribe");
        assert!(last_total <= ControllerConfig::default().overload_threshold_ppt + 2);
    }

    #[test]
    fn real_time_reservation_is_never_squished() {
        let (mut c, _reg) = controller();
        c.add_job(
            JobId(1),
            JobSpec::real_time(Proportion::from_ppt(400), Period::from_millis(10)),
        )
        .unwrap();
        c.add_job(JobId(2), JobSpec::miscellaneous()).unwrap();
        c.add_job(JobId(3), JobSpec::miscellaneous()).unwrap();
        let out = run_cycles(&mut c, 300, 0.01);
        let rt = out.actuation_for(JobId(1)).unwrap().reservation.proportion;
        assert_eq!(rt.ppt(), 400);
        // The adaptive jobs share what is left under the threshold.
        let a = out.actuation_for(JobId(2)).unwrap().reservation.proportion;
        let b = out.actuation_for(JobId(3)).unwrap().reservation.proportion;
        assert!(a.ppt() + b.ppt() <= 950 - 400 + 2);
        assert!(a.ppt() > 0 && b.ppt() > 0);
    }

    #[test]
    fn importance_weights_the_squish() {
        let (mut c, _reg) = controller();
        c.add_job_with_importance(JobId(1), JobSpec::miscellaneous(), Importance::new(4.0))
            .unwrap();
        c.add_job_with_importance(JobId(2), JobSpec::miscellaneous(), Importance::new(1.0))
            .unwrap();
        let out = run_cycles(&mut c, 300, 0.01);
        let important = out.actuation_for(JobId(1)).unwrap().reservation.proportion;
        let normal = out.actuation_for(JobId(2)).unwrap().reservation.proportion;
        assert!(
            important.ppt() > normal.ppt(),
            "important {} should exceed normal {}",
            important.ppt(),
            normal.ppt()
        );
        assert!(normal.ppt() > 0, "less important job must not be starved");
    }

    #[test]
    fn quality_exception_raised_when_demand_cannot_be_met() {
        let config = ControllerConfig {
            overload_threshold_ppt: 200,
            ..ControllerConfig::default()
        };
        let registry = MetricRegistry::new();
        let mut c = Controller::new(config, registry.clone());
        // Consumer of a permanently full queue (its producer is not CPU
        // limited), but only 200 ‰ of CPU exists in total.
        let queue = Arc::new(BoundedBuffer::<u8>::new("q", 4));
        for i in 0..4 {
            queue.try_push(i).unwrap();
        }
        registry.register(JobKey(1), Role::Consumer, queue);
        c.add_job(JobId(1), JobSpec::real_rate()).unwrap();
        c.add_job(JobId(2), JobSpec::miscellaneous()).unwrap();

        let usage = BTreeMap::new();
        let mut saw_exception = false;
        for i in 1..=400 {
            let out = c.control_cycle(i as f64 * 0.01, &usage);
            if !out.quality_exceptions().is_empty() {
                saw_exception = true;
                let q = out.quality_exceptions()[0];
                assert_eq!(q.job, JobId(1));
                assert!(q.granted.ppt() < q.desired.ppt());
            }
        }
        assert!(saw_exception);
    }

    #[test]
    fn usage_feedback_reclaims_unused_allocation() {
        let (mut c, reg) = controller();
        let queue = Arc::new(BoundedBuffer::<u8>::new("q", 4));
        for i in 0..4 {
            queue.try_push(i).unwrap();
        }
        reg.register(JobKey(1), Role::Consumer, queue);
        c.add_job(JobId(1), JobSpec::real_rate()).unwrap();

        // First grow the allocation with full usage.
        let full_usage = BTreeMap::new();
        let mut grown = 0;
        for i in 1..=100 {
            grown = c
                .control_cycle(i as f64 * 0.01, &full_usage)
                .actuation_for(JobId(1))
                .unwrap()
                .reservation
                .proportion
                .ppt();
        }
        // Now report that the job only uses 10 % of what it is given (for
        // example because the disk is the real bottleneck).
        let mut low_usage = BTreeMap::new();
        low_usage.insert(JobId(1), UsageSnapshot { usage_ratio: 0.1 });
        let mut shrunk = grown;
        for i in 101..=200 {
            shrunk = c
                .control_cycle(i as f64 * 0.01, &low_usage)
                .actuation_for(JobId(1))
                .unwrap()
                .reservation
                .proportion
                .ppt();
        }
        assert!(
            shrunk < grown,
            "allocation should shrink when unused ({grown} -> {shrunk})"
        );
    }

    #[test]
    fn usage_snapshots_are_sticky_until_overwritten() {
        let (mut c, _reg) = controller();
        let slot = c.add_job(JobId(1), JobSpec::miscellaneous()).unwrap();
        // Grow the allocation first.
        for i in 1..=50 {
            c.control_cycle_in_place(i as f64 * 0.01);
        }
        let grown = c.granted_at(slot).unwrap().ppt();
        let reclaim = c.config().reclaim_ppt;
        assert!(
            grown > 2 * reclaim + 1,
            "fixture needs headroom, got {grown}"
        );
        // A low-usage snapshot triggers a −C reclamation — and persists, so
        // the following cycle reclaims again without a fresh recording.
        c.record_usage(slot, UsageSnapshot { usage_ratio: 0.0 });
        c.control_cycle_in_place(0.51);
        assert_eq!(c.granted_at(slot).unwrap().ppt(), grown - reclaim);
        c.control_cycle_in_place(0.52);
        assert_eq!(c.granted_at(slot).unwrap().ppt(), grown - 2 * reclaim);
        // Overwriting the snapshot with full usage ends the reclamation:
        // under constant positive misc pressure the grant recovers.
        c.record_usage(slot, UsageSnapshot { usage_ratio: 1.0 });
        let floor = c.granted_at(slot).unwrap().ppt();
        for i in 1..=30 {
            c.control_cycle_in_place(0.52 + i as f64 * 0.01);
        }
        assert!(
            c.granted_at(slot).unwrap().ppt() >= floor,
            "full usage must stop the shrink ({floor} -> {})",
            c.granted_at(slot).unwrap().ppt()
        );
    }

    #[test]
    fn metric_attachment_promotes_misc_job_to_real_rate() {
        let (mut c, reg) = controller();
        c.add_job(JobId(1), JobSpec::miscellaneous()).unwrap();
        assert_eq!(c.job_class(JobId(1)), Some(JobClass::Miscellaneous));
        let queue = Arc::new(BoundedBuffer::<u8>::new("q", 4));
        reg.register(JobKey(1), Role::Consumer, queue);
        assert_eq!(c.job_class(JobId(1)), Some(JobClass::RealRate));
    }

    #[test]
    fn multi_cpu_admission_fits_real_time_jobs_per_cpu() {
        let config = ControllerConfig::default().with_cpus(2);
        let registry = MetricRegistry::new();
        let mut c = Controller::new(config, registry);
        // Two 800 ‰ reservations: one per CPU.
        c.add_job(
            JobId(1),
            JobSpec::real_time(Proportion::from_ppt(800), Period::from_millis(10)),
        )
        .unwrap();
        c.add_job(
            JobId(2),
            JobSpec::real_time(Proportion::from_ppt(800), Period::from_millis(10)),
        )
        .unwrap();
        assert_ne!(c.cpu_of(JobId(1)), c.cpu_of(JobId(2)));
        // A third fits on neither CPU.
        let err = c
            .add_job(
                JobId(3),
                JobSpec::real_time(Proportion::from_ppt(800), Period::from_millis(10)),
            )
            .unwrap_err();
        assert!(matches!(err, AdmitError::Rejected { .. }));
        let slot = c.slot_of(JobId(1)).unwrap();
        assert_eq!(c.cpu_of_slot(slot), c.cpu_of(JobId(1)));
    }

    #[test]
    fn adaptive_jobs_spread_over_cpus_by_granted_load() {
        let config = ControllerConfig::default().with_cpus(2);
        let registry = MetricRegistry::new();
        let mut c = Controller::new(config, registry);
        c.add_job(JobId(1), JobSpec::miscellaneous()).unwrap();
        // Let job 1's grant grow so cpu0 carries real load.
        for i in 1..=100 {
            c.control_cycle_in_place(i as f64 * 0.01);
        }
        assert!(c.granted(JobId(1)).unwrap().ppt() > 100);
        // The newcomer lands on the other, empty CPU.
        c.add_job(JobId(2), JobSpec::miscellaneous()).unwrap();
        assert_ne!(c.cpu_of(JobId(1)), c.cpu_of(JobId(2)));
    }

    #[test]
    fn multi_cpu_capacity_lets_two_hogs_saturate_two_cpus() {
        let config = ControllerConfig::default().with_cpus(2);
        let registry = MetricRegistry::new();
        let mut c = Controller::new(config, registry);
        c.add_job(JobId(1), JobSpec::miscellaneous()).unwrap();
        c.add_job(JobId(2), JobSpec::miscellaneous()).unwrap();
        let mut last = 0;
        for i in 1..=300 {
            last = c.control_cycle_in_place(i as f64 * 0.01).total_granted_ppt;
        }
        // On one CPU the pair would be squished under 950 ‰; two CPUs let
        // both grow toward a full CPU each.
        assert!(
            last > 1200,
            "aggregate grant should exceed one CPU, got {last}"
        );
        assert!(c.cpu_of(JobId(1)).is_some());
    }

    #[test]
    fn cost_model_scales_with_job_count() {
        let (mut c, _reg) = controller();
        for i in 0..10 {
            c.add_job(JobId(i), JobSpec::miscellaneous()).unwrap();
        }
        let out = run_cycles(&mut c, 1, 0.01);
        let expected = ControllerConfig::default()
            .cost_model
            .invocation_cost_us(10);
        assert_eq!(out.cost_us, expected);
    }

    #[test]
    fn every_job_always_gets_nonzero_allocation() {
        let (mut c, _reg) = controller();
        for i in 0..20 {
            c.add_job(JobId(i), JobSpec::miscellaneous()).unwrap();
        }
        let out = run_cycles(&mut c, 100, 0.01);
        for a in &out.actuations {
            assert!(a.reservation.proportion.ppt() >= 1);
        }
    }

    #[test]
    fn output_helpers() {
        let (mut c, _reg) = controller();
        c.add_job(JobId(5), JobSpec::miscellaneous()).unwrap();
        let out = run_cycles(&mut c, 1, 0.01);
        assert!(out.actuation_for(JobId(5)).is_some());
        assert!(out.actuation_for(JobId(99)).is_none());
        assert!(out.quality_exceptions().is_empty());
        assert_eq!(c.cycles(), 1);
        assert_eq!(c.job_ids(), vec![JobId(5)]);
        assert!(c.granted(JobId(5)).unwrap().ppt() > 0);
    }

    #[test]
    fn in_place_cycle_reuses_output_buffers() {
        let (mut c, _reg) = controller();
        for i in 0..8 {
            c.add_job(JobId(i), JobSpec::miscellaneous()).unwrap();
        }
        // Warm up, then capture buffer capacities.
        for i in 1..=50 {
            c.control_cycle_in_place(i as f64 * 0.01);
        }
        let caps = {
            let out = c.control_cycle_in_place(0.51);
            (out.actuations.capacity(), out.events.capacity())
        };
        for i in 52..=300 {
            let out = c.control_cycle_in_place(i as f64 * 0.01);
            assert_eq!(out.actuations.len(), 8);
            assert_eq!(
                (out.actuations.capacity(), out.events.capacity()),
                caps,
                "steady-state cycles must not reallocate the output"
            );
        }
    }

    #[test]
    fn incremental_cycles_match_full_and_go_quiet_at_the_fixed_point() {
        let registry_full = MetricRegistry::new();
        let registry_incr = MetricRegistry::new();
        let mut full = Controller::new(ControllerConfig::default(), registry_full);
        let mut incr = Controller::new(
            ControllerConfig::default().with_incremental(true),
            registry_incr,
        );
        for i in 0..4 {
            full.add_job(JobId(i), JobSpec::miscellaneous()).unwrap();
            incr.add_job(JobId(i), JobSpec::miscellaneous()).unwrap();
        }
        // Step both on an exact grid (dt bitwise-stable) until the misc
        // jobs' PID integrals clamp and the population reaches its fixed
        // point.  Committed state must agree every single cycle.
        let dt = 0.01;
        for i in 1..=900u32 {
            let now = i as f64 * dt;
            let a = full.control_cycle_with_dt(now, dt).total_granted_ppt;
            let b = incr.control_cycle_with_dt(now, dt).total_granted_ppt;
            assert_eq!(a, b, "granted totals diverged at cycle {i}");
            for j in 0..4 {
                assert_eq!(
                    full.granted(JobId(j)),
                    incr.granted(JobId(j)),
                    "grant for job {j} diverged at cycle {i}"
                );
            }
        }
        // At the fixed point the full path still re-emits every actuation,
        // while the incremental path emits none (and costs the same by the
        // model, which charges per managed job).
        let out_full = full.control_cycle_with_dt(9.01, dt).clone();
        let out_incr = incr.control_cycle_with_dt(9.01, dt).clone();
        assert_eq!(out_full.actuations.len(), 4);
        assert_eq!(
            out_incr.actuations.len(),
            0,
            "a settled population must emit no actuations"
        );
        assert_eq!(out_full.total_granted_ppt, out_incr.total_granted_ppt);
        assert_eq!(out_full.cost_us, out_incr.cost_us);
        // A structural change snaps the incremental controller back to a
        // full (all-actuations) cycle.
        incr.add_job(JobId(99), JobSpec::miscellaneous()).unwrap();
        let out = incr.control_cycle_with_dt(9.02, dt);
        assert_eq!(out.actuations.len(), 5);
    }

    #[test]
    fn incremental_usage_feedback_matches_full() {
        let mut full = Controller::new(ControllerConfig::default(), MetricRegistry::new());
        let mut incr = Controller::new(
            ControllerConfig::default().with_incremental(true),
            MetricRegistry::new(),
        );
        let sf = full.add_job(JobId(1), JobSpec::miscellaneous()).unwrap();
        let si = incr.add_job(JobId(1), JobSpec::miscellaneous()).unwrap();
        let dt = 0.01;
        let mut cycle = 0u32;
        let mut step = |full: &mut Controller, incr: &mut Controller| {
            cycle += 1;
            let now = cycle as f64 * dt;
            let a = full.control_cycle_with_dt(now, dt).total_granted_ppt;
            let b = incr.control_cycle_with_dt(now, dt).total_granted_ppt;
            assert_eq!(a, b, "diverged at cycle {cycle}");
        };
        for _ in 0..60 {
            step(&mut full, &mut incr);
        }
        // Sticky low usage shrinks both controllers identically...
        full.record_usage(sf, UsageSnapshot { usage_ratio: 0.0 });
        incr.record_usage(si, UsageSnapshot { usage_ratio: 0.0 });
        for _ in 0..10 {
            step(&mut full, &mut incr);
        }
        // ...and full usage lets both recover identically.
        full.record_usage(sf, UsageSnapshot { usage_ratio: 1.0 });
        incr.record_usage(si, UsageSnapshot { usage_ratio: 1.0 });
        for _ in 0..60 {
            step(&mut full, &mut incr);
        }
        assert_eq!(full.granted(JobId(1)), incr.granted(JobId(1)));
    }

    proptest! {
        /// The incremental controller against the staged reference: the
        /// same operation sequence drives one controller of each mode on a
        /// two-CPU machine, and after every paired cycle the committed
        /// state (grants, placements, totals) must match exactly, as must
        /// the state reconstructed by *applying* each side's emitted
        /// actuations (the incremental side's changed-only stream must
        /// suffice to track the full side's every-cycle stream).
        ///
        /// Ops are `(selector, id, ratio_sel, flag)` tuples because the
        /// vendored proptest miniature has no `prop_oneof`; selectors 6–9
        /// all run a paired cycle so the comparison dominates the mix.
        #[test]
        fn incremental_matches_full_under_arbitrary_ops(
            ops in proptest::collection::vec(
                (0u8..10, 0u64..6, 0u8..4, proptest::bool::ANY),
                1..120,
            ),
        ) {
            let registry = MetricRegistry::new();
            let queue = Arc::new(BoundedBuffer::<u8>::new("pq", 8));
            let mut full = Controller::new(
                ControllerConfig::default().with_cpus(2),
                registry.clone(),
            );
            let mut incr = Controller::new(
                ControllerConfig::default().with_cpus(2).with_incremental(true),
                registry.clone(),
            );
            let mut mirror_full: BTreeMap<JobId, (Reservation, CpuId)> = BTreeMap::new();
            let mut mirror_incr: BTreeMap<JobId, (Reservation, CpuId)> = BTreeMap::new();
            let mut now = 0.0f64;
            for (op, i, ratio_sel, flag) in ops {
                let job = JobId(i);
                match op {
                    0 => {
                        let a = full.add_job(job, JobSpec::miscellaneous());
                        let b = incr.add_job(job, JobSpec::miscellaneous());
                        prop_assert_eq!(a.is_ok(), b.is_ok());
                    }
                    1 => {
                        // A real-rate job fed by the shared queue.  Both
                        // controllers read the same registry, so they sense
                        // identical pressures.
                        let a = full.add_job(job, JobSpec::real_rate());
                        let b = incr.add_job(job, JobSpec::real_rate());
                        prop_assert_eq!(a.is_ok(), b.is_ok());
                        if a.is_ok() {
                            let role = if flag { Role::Producer } else { Role::Consumer };
                            registry.register(job.key(), role, queue.clone());
                        }
                    }
                    2 => {
                        let spec = JobSpec::real_time(
                            Proportion::from_ppt(150),
                            Period::from_millis(10 + i),
                        );
                        let a = full.add_job(job, spec);
                        let b = incr.add_job(job, spec);
                        prop_assert_eq!(a.is_ok(), b.is_ok());
                    }
                    3 => {
                        let a = full.remove_job(job);
                        let b = incr.remove_job(job);
                        prop_assert_eq!(a, b);
                        mirror_full.remove(&job);
                        mirror_incr.remove(&job);
                    }
                    4 => {
                        let w = if flag {
                            Importance::new(5.0)
                        } else {
                            Importance::NORMAL
                        };
                        prop_assert_eq!(full.set_importance(job, w), incr.set_importance(job, w));
                    }
                    5 => {
                        let ratio = [0.0, 0.3, 0.6, 1.0][ratio_sel as usize];
                        let snap = UsageSnapshot { usage_ratio: ratio };
                        if let Some(slot) = full.slot_of(job) {
                            full.record_usage(slot, snap);
                        }
                        if let Some(slot) = incr.slot_of(job) {
                            incr.record_usage(slot, snap);
                        }
                    }
                    6 => {
                        let _ = queue.try_push(0);
                    }
                    7 => {
                        let _ = queue.try_pop();
                    }
                    _ => {
                        let dt = if flag { 0.01 } else { 0.02 };
                        now += dt;
                        let out_full = full.control_cycle_with_dt(now, dt).clone();
                        let out_incr = incr.control_cycle_with_dt(now, dt).clone();
                        for a in &out_full.actuations {
                            mirror_full.insert(a.job, (a.reservation, a.cpu));
                        }
                        for a in &out_incr.actuations {
                            mirror_incr.insert(a.job, (a.reservation, a.cpu));
                        }
                        prop_assert_eq!(
                            out_full.total_granted_ppt, out_incr.total_granted_ppt,
                            "granted totals diverged"
                        );
                        prop_assert_eq!(out_full.cost_us, out_incr.cost_us);
                        for job in full.job_ids() {
                            prop_assert_eq!(full.granted(job), incr.granted(job));
                            prop_assert_eq!(full.cpu_of(job), incr.cpu_of(job));
                        }
                        prop_assert_eq!(
                            &mirror_full, &mirror_incr,
                            "actuation-applied reservations diverged"
                        );
                    }
                }
            }
        }
    }
}
