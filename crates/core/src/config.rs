//! Controller configuration.

use crate::cost::ControllerCostModel;
use crate::squish::SquishPolicy;
use rrs_feedback::PidConfig;
use rrs_scheduler::{Period, Proportion};
use serde::{Deserialize, Serialize};

/// Configuration of the adaptive controller.
///
/// The defaults correspond to the paper's prototype: a 10 ms controller
/// period (100 Hz sampling), a 30 ms default dispatch period for jobs that
/// do not specify one, a 95 % overload threshold, and period estimation
/// disabled (as it was for all experiments in §4).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ControllerConfig {
    /// How often the controller runs, in seconds (paper: 10 ms).
    pub controller_period_s: f64,
    /// PID gains applied to the summed progress pressure to produce the
    /// cumulative pressure `Q_t`.
    pub pid: PidConfig,
    /// The constant scaling factor `k` of Figure 4, in parts per thousand
    /// of CPU per unit of cumulative pressure.
    pub gain_k_ppt: f64,
    /// The constant decrement `C` of Figure 4, in parts per thousand,
    /// applied when the previous allocation was too generous.
    pub reclaim_ppt: u32,
    /// A job is "too generous" when it used less than this fraction of its
    /// allocation in the last period.
    pub usage_threshold: f64,
    /// The constant pseudo-pressure applied to miscellaneous jobs, so that
    /// they keep asking for more CPU until satisfied or squished.
    pub misc_pressure: f64,
    /// The smallest proportion any job may be assigned; keeping this
    /// non-zero is what rules out starvation.
    pub min_proportion: Proportion,
    /// The largest proportion the controller will hand to a single job.
    pub max_proportion: Proportion,
    /// Default period assigned to jobs that do not specify one (paper:
    /// 30 ms).
    pub default_period: Period,
    /// Total allocation (parts per thousand) the controller will hand out;
    /// beyond this it squishes.  Mirrors the RBS admission threshold.
    pub overload_threshold_ppt: u32,
    /// Policy used to squish real-rate and miscellaneous jobs on overload.
    pub squish_policy: SquishPolicy,
    /// Pressure magnitude at which a quality exception is raised for an
    /// overloaded real-rate job (a nearly full or nearly empty queue).
    pub quality_exception_pressure: f64,
    /// Whether the period-estimation heuristic of §3.3 runs (the paper
    /// disabled it for all experiments).
    pub period_estimation: bool,
    /// Model of the controller's own execution cost (Figure 5).
    pub cost_model: ControllerCostModel,
    /// Multi-CPU placement: how many CPUs the Place stage spreads jobs
    /// over, and when it migrates.  Defaults to the paper's single CPU.
    pub placement: PlacementConfig,
    /// Opt-in incremental control cycles.
    ///
    /// When enabled, a control cycle only recomputes jobs whose inputs
    /// (sensed pressure, usage feedback or committed grant) changed since
    /// the previous cycle; jobs at a proven bitwise fixed point are
    /// skipped, the squish is re-run only when some desired proportion
    /// changed, and the migration candidate scan only runs when the
    /// per-CPU load gap exceeds the imbalance bound.  Any structural
    /// change — job add/remove, importance change, CPU-count change, a
    /// registry mutation or a different cycle length — falls back to a
    /// full staged cycle, so committed grants and placements are always
    /// identical to the non-incremental path.
    ///
    /// Two *observable* deltas are accepted and documented: actuations are
    /// emitted only for jobs whose `(grant, period, cpu)` actually changed
    /// (consumers must treat missing actuations as "unchanged"), and
    /// squish/quality-exception events are emitted only on cycles that
    /// recomputed the jobs involved.  Incremental mode requires
    /// `period_estimation` to stay off (the paper's configuration); when
    /// it is on every cycle falls back to the full path.
    #[serde(default)]
    pub incremental: bool,
}

/// Configuration of the pipeline's Place stage (multi-CPU placement and
/// migration).
///
/// With the default single CPU the stage pins every job to `cpu0` and
/// never migrates, which is exactly the paper's machine.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PlacementConfig {
    /// Number of CPUs jobs are placed onto (at least 1).
    pub cpus: usize,
    /// Migration trigger: when the most loaded CPU's granted proportion
    /// exceeds the least loaded CPU's by more than this bound (in parts
    /// per thousand), one job is migrated per cycle to rebalance.
    pub imbalance_threshold_ppt: u32,
}

impl Default for PlacementConfig {
    fn default() -> Self {
        Self {
            cpus: 1,
            imbalance_threshold_ppt: 200,
        }
    }
}

impl PlacementConfig {
    /// The largest machine the Place stage will address.  Bounds the
    /// per-CPU accumulators (and keeps `threshold × CPUs` far from u32
    /// overflow) while comfortably exceeding any real machine.
    pub const MAX_CPUS: usize = 4096;

    /// Number of CPUs, clamped to `1..=MAX_CPUS`.
    pub fn cpu_count(&self) -> usize {
        self.cpus.clamp(1, Self::MAX_CPUS)
    }
}

impl Default for ControllerConfig {
    fn default() -> Self {
        Self {
            controller_period_s: 0.010,
            pid: PidConfig {
                kp: 0.6,
                ki: 6.0,
                kd: 0.01,
                integral_limit: 2.0,
                output_limit: 2.5,
            },
            gain_k_ppt: 500.0,
            reclaim_ppt: 20,
            usage_threshold: 0.5,
            misc_pressure: 0.25,
            min_proportion: Proportion::MIN_NONZERO,
            max_proportion: Proportion::FULL,
            default_period: Period::DEFAULT,
            overload_threshold_ppt: 950,
            squish_policy: SquishPolicy::WeightedFairShare,
            quality_exception_pressure: 0.45,
            period_estimation: false,
            cost_model: ControllerCostModel::default(),
            placement: PlacementConfig::default(),
            incremental: false,
        }
    }
}

impl ControllerConfig {
    /// Returns a copy with a different controller period.
    pub fn with_controller_period(mut self, seconds: f64) -> Self {
        self.controller_period_s = seconds;
        self
    }

    /// Returns a copy with different PID gains.
    pub fn with_pid(mut self, pid: PidConfig) -> Self {
        self.pid = pid;
        self
    }

    /// Returns a copy with a different squish policy.
    pub fn with_squish_policy(mut self, policy: SquishPolicy) -> Self {
        self.squish_policy = policy;
        self
    }

    /// Returns a copy with period estimation enabled or disabled.
    pub fn with_period_estimation(mut self, enabled: bool) -> Self {
        self.period_estimation = enabled;
        self
    }

    /// Returns a copy placing jobs over `cpus` CPUs (clamped to
    /// `1..=PlacementConfig::MAX_CPUS`).
    pub fn with_cpus(mut self, cpus: usize) -> Self {
        self.placement.cpus = cpus.clamp(1, PlacementConfig::MAX_CPUS);
        self
    }

    /// Returns a copy with incremental control cycles enabled or disabled.
    pub fn with_incremental(mut self, enabled: bool) -> Self {
        self.incremental = enabled;
        self
    }

    /// Sampling frequency in Hz.
    pub fn frequency_hz(&self) -> f64 {
        1.0 / self.controller_period_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = ControllerConfig::default();
        assert_eq!(c.controller_period_s, 0.010);
        assert_eq!(c.frequency_hz(), 100.0);
        assert_eq!(c.default_period, Period::from_millis(30));
        assert_eq!(c.overload_threshold_ppt, 950);
        assert!(!c.period_estimation);
        assert!(!c.incremental, "full staged cycles are the default");
        assert_eq!(c.min_proportion.ppt(), 1);
        assert_eq!(c.placement.cpus, 1, "the paper's machine has one CPU");
        assert_eq!(c.placement.cpu_count(), 1);
    }

    #[test]
    fn with_cpus_clamps_to_the_supported_range() {
        assert_eq!(ControllerConfig::default().with_cpus(4).placement.cpus, 4);
        assert_eq!(ControllerConfig::default().with_cpus(0).placement.cpus, 1);
        assert_eq!(
            ControllerConfig::default()
                .with_cpus(usize::MAX)
                .placement
                .cpus,
            PlacementConfig::MAX_CPUS
        );
        assert_eq!(
            PlacementConfig {
                cpus: 0,
                imbalance_threshold_ppt: 1
            }
            .cpu_count(),
            1
        );
        // An absurd raw cpus value cannot overflow the machine capacity
        // (threshold × CPUs) or balloon the per-CPU accumulators.
        let wild = PlacementConfig {
            cpus: usize::MAX,
            imbalance_threshold_ppt: 1,
        };
        assert_eq!(wild.cpu_count(), PlacementConfig::MAX_CPUS);
    }

    #[test]
    fn builder_style_modifiers() {
        let c = ControllerConfig::default()
            .with_controller_period(0.03)
            .with_squish_policy(SquishPolicy::FairShare)
            .with_period_estimation(true)
            .with_pid(PidConfig::p_only(1.0));
        assert_eq!(c.controller_period_s, 0.03);
        assert_eq!(c.squish_policy, SquishPolicy::FairShare);
        assert!(c.period_estimation);
        assert_eq!(c.pid.ki, 0.0);
    }
}
