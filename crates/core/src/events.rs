//! Controller events: quality exceptions and admission decisions.

use crate::controller::JobId;
use rrs_scheduler::{CpuId, Proportion};
use serde::{Deserialize, Serialize};

/// A quality exception raised towards an application.
///
/// "Upon reaching overload ... it can raise quality exceptions to notify the
/// jobs of the overload and renegotiate the proportions" (§3.1); "if it were
/// the case that there was not sufficient CPU to satisfy all the jobs, the
/// queue would eventually become full and trigger a quality exception,
/// allowing the application to adapt by lowering its resource requirements"
/// (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QualityException {
    /// The job being notified.
    pub job: JobId,
    /// The proportion the job appears to need.
    pub desired: Proportion,
    /// The proportion it was actually granted.
    pub granted: Proportion,
    /// The cumulative progress pressure at the time of the exception.
    pub pressure: f64,
    /// Controller time at which the exception was raised, in seconds.
    pub time: f64,
}

/// Anything of note the controller did during a control cycle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ControllerEvent {
    /// A real-time job's reservation was admitted.
    RealTimeAdmitted {
        /// The admitted job.
        job: JobId,
        /// The proportion that was reserved.
        proportion: Proportion,
    },
    /// A real-time job's reservation was rejected by admission control.
    RealTimeRejected {
        /// The rejected job.
        job: JobId,
        /// The proportion that was requested.
        requested: Proportion,
        /// The proportion that was still available.
        available: Proportion,
    },
    /// A quality exception was raised.
    Quality(QualityException),
    /// The controller squished allocations because the CPU was
    /// oversubscribed.
    Squished {
        /// Sum of desired allocations before squishing, in parts per
        /// thousand (may exceed 1000).
        desired_total_ppt: u64,
        /// Capacity that was actually available for adaptive jobs, in parts
        /// per thousand.
        available_ppt: u32,
    },
    /// The Place stage moved a job to another CPU to rebalance load.
    Migrated {
        /// The job that moved.
        job: JobId,
        /// The CPU it left.
        from: CpuId,
        /// The CPU it now runs on.
        to: CpuId,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_copyable_and_comparable() {
        let e1 = ControllerEvent::Squished {
            desired_total_ppt: 1500,
            available_ppt: 900,
        };
        let e2 = e1;
        assert_eq!(e1, e2);

        let q = QualityException {
            job: JobId(1),
            desired: Proportion::from_ppt(500),
            granted: Proportion::from_ppt(200),
            pressure: 0.5,
            time: 1.0,
        };
        let ev = ControllerEvent::Quality(q);
        assert!(matches!(ev, ControllerEvent::Quality(x) if x.job == JobId(1)));
    }

    #[test]
    fn serde_round_trip() {
        let ev = ControllerEvent::RealTimeRejected {
            job: JobId(3),
            requested: Proportion::from_ppt(700),
            available: Proportion::from_ppt(100),
        };
        let json = serde_json::to_string(&ev).unwrap();
        let back: ControllerEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(ev, back);
    }
}
