//! Progress-pressure computation (Figure 3).
//!
//! For each real-rate job the controller samples its progress metrics,
//! centres each fill level to `F_{t,i} ∈ [-1/2, 1/2]`, flips the sign for
//! queues the job produces into (`R_{t,i}`), sums the contributions and
//! passes the sum through a PID control function `G` to obtain the
//! cumulative progress pressure `Q_t`.

use rrs_feedback::{PidConfig, PidController};
use rrs_queue::{JobKey, MetricRegistry};

/// Per-job PID state turning summed instantaneous pressure into the
/// cumulative pressure `Q_t`.
///
/// # Examples
///
/// ```
/// use rrs_core::PressureEstimator;
/// use rrs_feedback::PidConfig;
///
/// let mut est = PressureEstimator::new(PidConfig::p_only(1.0));
/// // A consumer of a completely full queue has summed pressure +1/2.
/// let q = est.update(0.5, 0.01);
/// assert_eq!(q, 0.5);
/// ```
#[derive(Debug, Clone)]
pub struct PressureEstimator {
    pid: PidController,
    last_summed: f64,
    last_q: f64,
}

impl PressureEstimator {
    /// Creates an estimator with the given PID gains.
    pub fn new(config: PidConfig) -> Self {
        Self {
            pid: PidController::new(config),
            last_summed: 0.0,
            last_q: 0.0,
        }
    }

    /// Feeds the summed instantaneous pressure `Σ_i R_{t,i}·F_{t,i}` for one
    /// controller period of length `dt` seconds and returns the cumulative
    /// pressure `Q_t`.
    pub fn update(&mut self, summed_pressure: f64, dt: f64) -> f64 {
        self.last_summed = summed_pressure;
        self.last_q = self.pid.update(summed_pressure, dt);
        self.last_q
    }

    /// The most recent summed instantaneous pressure.
    pub fn last_summed_pressure(&self) -> f64 {
        self.last_summed
    }

    /// The most recent cumulative pressure `Q_t`.
    pub fn last_cumulative_pressure(&self) -> f64 {
        self.last_q
    }

    /// Clears the PID state (used when a job's metrics are detached).
    pub fn reset(&mut self) {
        self.pid.reset();
        self.last_summed = 0.0;
        self.last_q = 0.0;
    }

    /// A bitwise fingerprint of the estimator's complete internal state
    /// (last summed pressure, last `Q_t`, PID integral and the PID's
    /// remembered derivative error).
    ///
    /// Two equal fingerprints mean the estimator is in bitwise-identical
    /// state: if an update left the fingerprint unchanged, repeating that
    /// update with the same inputs is a no-op.  The incremental controller
    /// uses this to prove a job has reached a fixed point and can be
    /// skipped without changing any observable behaviour.
    pub fn state_fingerprint(&self) -> (u64, u64, u64, Option<u64>) {
        (
            self.last_summed.to_bits(),
            self.last_q.to_bits(),
            self.pid.integral().to_bits(),
            self.pid.last_error().map(f64::to_bits),
        )
    }

    /// Scales the accumulated integral state by `factor`.
    ///
    /// The proportion estimator calls this when it reclaims allocation from
    /// an over-provisioned job (Figure 4's "−C" branch) so that the PID does
    /// not immediately push the allocation back up.
    pub fn scale_state(&mut self, factor: f64) {
        let cfg = self.pid.config();
        let target = self.pid.integral() * factor.clamp(0.0, 1.0);
        // Rebuild the controller with the scaled integral by resetting and
        // priming it: one update with dt chosen so that error·dt equals the
        // desired integral.
        self.pid.reset();
        if cfg.ki != 0.0 && target != 0.0 {
            // Prime with a single unit-error step of duration `target`.
            self.pid.update(target.signum(), target.abs());
            // Remove the proportional/derivative contribution from the
            // visible outputs by re-reporting the last values unchanged.
        }
        self.last_q = self.pid.last_output();
    }
}

/// Samples the registry and returns the summed instantaneous pressure
/// `Σ_i R_{t,i}·F_{t,i}` for `job`, or `None` if the job has no registered
/// progress metric.
pub fn summed_pressure(registry: &MetricRegistry, job: JobKey) -> Option<f64> {
    registry.summed_pressure(job)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rrs_queue::{BoundedBuffer, Role};
    use std::sync::Arc;

    #[test]
    fn proportional_estimator_tracks_summed_pressure() {
        let mut est = PressureEstimator::new(PidConfig::p_only(2.0));
        assert_eq!(est.update(0.25, 0.01), 0.5);
        assert_eq!(est.last_summed_pressure(), 0.25);
        assert_eq!(est.last_cumulative_pressure(), 0.5);
    }

    #[test]
    fn integral_accumulates_persistent_pressure() {
        let mut est = PressureEstimator::new(PidConfig::pi(0.0, 1.0));
        let mut q = 0.0;
        for _ in 0..100 {
            q = est.update(0.5, 0.01);
        }
        // Integral of 0.5 over 1 second.
        assert!((q - 0.5).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_state() {
        let mut est = PressureEstimator::new(PidConfig::default());
        est.update(0.5, 0.01);
        est.reset();
        assert_eq!(est.last_cumulative_pressure(), 0.0);
        assert_eq!(est.last_summed_pressure(), 0.0);
    }

    #[test]
    fn scale_state_reduces_cumulative_pressure() {
        let mut est = PressureEstimator::new(PidConfig::pi(0.0, 1.0));
        for _ in 0..100 {
            est.update(0.5, 0.01);
        }
        let before = est.last_cumulative_pressure();
        est.scale_state(0.5);
        let after = est.last_cumulative_pressure();
        assert!(after < before);
        assert!(after > 0.0);
    }

    #[test]
    fn scale_state_to_zero_clears_pressure() {
        let mut est = PressureEstimator::new(PidConfig::pi(0.0, 1.0));
        est.update(0.5, 1.0);
        est.scale_state(0.0);
        assert_eq!(est.last_cumulative_pressure(), 0.0);
    }

    #[test]
    fn registry_pressure_for_producer_consumer_pair() {
        let registry = MetricRegistry::new();
        let queue = Arc::new(BoundedBuffer::<u8>::new("q", 10));
        registry.register(JobKey(1), Role::Producer, queue.clone());
        registry.register(JobKey(2), Role::Consumer, queue.clone());

        // Empty queue: producer is behind (positive pressure), consumer is
        // ahead (negative pressure).
        assert_eq!(summed_pressure(&registry, JobKey(1)), Some(0.5));
        assert_eq!(summed_pressure(&registry, JobKey(2)), Some(-0.5));

        // Half-full queue: no pressure on either.
        for i in 0..5 {
            queue.try_push(i).unwrap();
        }
        assert_eq!(summed_pressure(&registry, JobKey(1)), Some(0.0));
        assert_eq!(summed_pressure(&registry, JobKey(2)), Some(0.0));

        // Unknown job: no metric.
        assert_eq!(summed_pressure(&registry, JobKey(3)), None);
    }

    proptest! {
        #[test]
        fn cumulative_pressure_is_bounded_by_output_limit(
            pressures in proptest::collection::vec(-0.5f64..0.5, 1..200),
        ) {
            let config = PidConfig {
                kp: 1.0,
                ki: 2.0,
                kd: 0.1,
                integral_limit: 2.0,
                output_limit: 3.0,
            };
            let mut est = PressureEstimator::new(config);
            for p in pressures {
                let q = est.update(p, 0.01);
                prop_assert!(q.abs() <= 3.0 + 1e-9);
            }
        }
    }
}
