//! # realrate — a feedback-driven proportion allocator for real-rate scheduling
//!
//! This crate is the facade of a workspace that reproduces *"A
//! Feedback-driven Proportion Allocator for Real-Rate Scheduling"*
//! (Steere, Goel, Gruenberg, McNamee, Pu and Walpole).  It re-exports the
//! individual crates so applications can depend on a single package:
//!
//! * [`core`] (`rrs-core`) — the adaptive controller: thread taxonomy,
//!   progress pressure, PID control, proportion estimation, squishing and
//!   admission control, organised as a staged control-plane pipeline
//!   (Sense → Classify → Estimate → Allocate → Place → Actuate) over
//!   dense slot-indexed job storage whose steady-state cycle is
//!   allocation-free.  The Place stage assigns each job a CPU:
//!   least-loaded fit at admission, threshold-triggered migration under
//!   imbalance.
//! * [`scheduler`] (`rrs-scheduler`) — the reservation-based
//!   proportion/period dispatcher, and the **machine layer**
//!   ([`scheduler::Machine`]): `N` per-CPU dispatchers advancing in
//!   lockstep behind the single-CPU API, with cross-CPU migration that
//!   preserves mid-period accounting ([`scheduler::CpuId`]).
//! * [`queue`] (`rrs-queue`) — symbiotic interfaces: bounded buffers, pipes
//!   and the progress-metric registry.
//! * [`feedback`] (`rrs-feedback`) — the software feedback toolkit (PID,
//!   filters, signal generators, circuits).
//! * [`sim`] (`rrs-sim`) — the deterministic CPU simulator used by the
//!   experiments.
//! * [`workloads`] (`rrs-workloads`) — the workload generators driving the
//!   paper's evaluation.
//! * [`realtime`] (`rrs-realtime`) — a wall-clock executor applying the same
//!   scheduler and controller to real OS threads.
//! * [`scenario`] (`rrs-scenario`) — declarative scenarios: seeded arrival
//!   processes, phase schedules (load steps, hog storms, CPU hot-adds)
//!   and SLO-checked runs, with a built-in corpus.
//! * [`metrics`] (`rrs-metrics`) — time series, statistics and experiment
//!   export.
//!
//! ## Quickstart
//!
//! ```
//! use realrate::core::JobSpec;
//! use realrate::sim::{RunResult, SimConfig, Simulation, WorkModel};
//!
//! // A job that uses every cycle it is given.
//! struct Spin;
//! impl WorkModel for Spin {
//!     fn run(&mut self, _now: u64, quantum_us: u64, _hz: f64) -> RunResult {
//!         RunResult::ran(quantum_us)
//!     }
//! }
//!
//! // `SimConfig::default()` is the paper's machine: a single CPU.  Ask
//! // for more with `.with_cpus(n)` and the Place stage spreads jobs
//! // over the machine; everything below is unchanged either way.
//! let mut sim = Simulation::new(SimConfig::default());
//! let job = sim.add_job("spin", JobSpec::miscellaneous(), Box::new(Spin)).unwrap();
//! sim.run_for(2.0);
//! // Without any reservation or priority, the controller discovered that
//! // the job can use the CPU and grew its proportion.
//! assert!(sim.current_allocation_ppt(job) > 100);
//! // The handle carries the controller's dense slot, shared by every
//! // layer — the same grant is visible through it.
//! let granted = sim.controller().granted_at(job.slot).unwrap();
//! assert_eq!(granted.ppt(), sim.current_allocation_ppt(job));
//! ```
//!
//! ## Multi-CPU machines
//!
//! ```
//! use realrate::core::JobSpec;
//! use realrate::sim::{RunResult, SimConfig, Simulation, WorkModel};
//!
//! struct Spin;
//! impl WorkModel for Spin {
//!     fn run(&mut self, _now: u64, quantum_us: u64, _hz: f64) -> RunResult {
//!         RunResult::ran(quantum_us)
//!     }
//! }
//!
//! let mut sim = Simulation::new(SimConfig::default().with_cpus(2));
//! let a = sim.add_job("a", JobSpec::miscellaneous(), Box::new(Spin)).unwrap();
//! let b = sim.add_job("b", JobSpec::miscellaneous(), Box::new(Spin)).unwrap();
//! sim.run_for(2.0);
//! // Least-loaded fit put the hogs on different CPUs, so together they
//! // consume more than one CPU's worth of time.
//! assert_ne!(sim.cpu_of(a), sim.cpu_of(b));
//! let total = sim.cpu_used_us(a) + sim.cpu_used_us(b);
//! assert!(total > sim.now_micros());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use rrs_core as core;
pub use rrs_feedback as feedback;
pub use rrs_metrics as metrics;
pub use rrs_queue as queue;
pub use rrs_realtime as realtime;
pub use rrs_scenario as scenario;
pub use rrs_scheduler as scheduler;
pub use rrs_sim as sim;
pub use rrs_workloads as workloads;
