//! # realrate — a feedback-driven proportion allocator for real-rate scheduling
//!
//! This crate is the facade of a workspace that reproduces *"A
//! Feedback-driven Proportion Allocator for Real-Rate Scheduling"*
//! (Steere, Goel, Gruenberg, McNamee, Pu and Walpole).  It re-exports the
//! individual crates so applications can depend on a single package:
//!
//! * [`api`] (`rrs-api`) — **the front door**: the backend-agnostic
//!   [`api::Host`] trait, the [`api::Runtime`] builder
//!   (`Runtime::sim().cpus(8).build()` /
//!   `Runtime::wall_clock().build()`), the single [`api::JobHandle`] and
//!   the [`api::SimTime`] microsecond time type.  Programs written
//!   against it run unchanged on the deterministic simulator *and* on
//!   real OS threads.
//! * [`core`] (`rrs-core`) — the adaptive controller: thread taxonomy,
//!   progress pressure, PID control, proportion estimation, squishing and
//!   admission control, organised as a staged control-plane pipeline
//!   (Sense → Classify → Estimate → Allocate → Place → Actuate) over
//!   dense slot-indexed job storage whose steady-state cycle is
//!   allocation-free.  The Place stage assigns each job a CPU:
//!   least-loaded fit at admission, threshold-triggered migration under
//!   imbalance.
//! * [`scheduler`] (`rrs-scheduler`) — the reservation-based
//!   proportion/period dispatcher, and the **machine layer**
//!   ([`scheduler::Machine`]): `N` per-CPU dispatchers advancing in
//!   lockstep behind the single-CPU API, with cross-CPU migration that
//!   preserves mid-period accounting ([`scheduler::CpuId`]).
//! * [`queue`] (`rrs-queue`) — symbiotic interfaces: bounded buffers, pipes
//!   and the progress-metric registry.
//! * [`feedback`] (`rrs-feedback`) — the software feedback toolkit (PID,
//!   filters, signal generators, circuits).
//! * [`sim`] (`rrs-sim`) — the deterministic CPU simulator backend.
//! * [`workloads`] (`rrs-workloads`) — the workload generators driving the
//!   paper's evaluation; their installers take any [`api::Host`].
//! * [`realtime`] (`rrs-realtime`) — the wall-clock executor backend,
//!   applying the same scheduler and controller to real OS threads.
//! * [`scenario`] (`rrs-scenario`) — declarative scenarios: seeded arrival
//!   processes, phase schedules (load steps, hog storms, CPU hot-adds)
//!   and SLO-checked runs on either backend, with a built-in corpus.
//! * [`metrics`] (`rrs-metrics`) — time series, statistics and experiment
//!   export.
//! * [`analysis`] (`rrs-analysis`) — the workspace invariant linter: a
//!   self-contained static-analysis pass (own Rust lexer, no external
//!   parser) that machine-checks the hot-path contracts — zero-alloc
//!   steady state, replay determinism, integer time, edge-only id maps,
//!   panic discipline, `unsafe` inventory, and the sharded
//!   parallel-region audit — against the justified allowlist in
//!   `analysis.toml`.  CI blocks on `cargo run -p rrs-analysis -- --deny`.
//! * [`telemetry`] (`rrs-telemetry`) — zero-cost runtime tracing: the
//!   bounded-ring [`telemetry::Recorder`] (enabled per host via
//!   `Runtime::sim().telemetry(..)`), the shared
//!   [`telemetry::TelemetrySnapshot`] counter schema behind
//!   [`api::Host::telemetry`], and Chrome trace-event JSON export
//!   loadable in Perfetto.
//!
//! ## Quickstart
//!
//! Build a host with [`api::Runtime`], add jobs, advance time — the same
//! program runs on either backend:
//!
//! ```
//! use realrate::api::{JobSpec, Runtime, SimTime};
//! use realrate::sim::{RunResult, WorkModel};
//!
//! // A job that uses every cycle it is given.
//! struct Spin;
//! impl WorkModel for Spin {
//!     fn run(&mut self, _now: u64, quantum_us: u64, _hz: f64) -> RunResult {
//!         RunResult::ran(quantum_us)
//!     }
//! }
//!
//! // `Runtime::sim()` is the paper's machine: one deterministic 400 MHz
//! // CPU.  Ask for more with `.cpus(n)`; swap in `Runtime::wall_clock()`
//! // and the identical program runs on real OS threads.
//! let mut host = Runtime::sim().build();
//! let job = host.add_job("spin", JobSpec::miscellaneous(), Box::new(Spin)).unwrap();
//! host.advance(SimTime::from_secs(2));
//! // Without any reservation or priority, the controller discovered that
//! // the job can use the CPU and grew its proportion.
//! assert!(host.allocation_ppt(job) > 100);
//! // The handle carries the controller's dense slot, shared by every
//! // layer — the same grant is visible through it.
//! let granted = host.controller().granted_at(job.slot).unwrap();
//! assert_eq!(granted.ppt(), host.allocation_ppt(job));
//! ```
//!
//! ## Multi-CPU machines
//!
//! ```
//! use realrate::api::{JobSpec, Runtime, SimTime};
//! use realrate::sim::{RunResult, WorkModel};
//!
//! struct Spin;
//! impl WorkModel for Spin {
//!     fn run(&mut self, _now: u64, quantum_us: u64, _hz: f64) -> RunResult {
//!         RunResult::ran(quantum_us)
//!     }
//! }
//!
//! let mut host = Runtime::sim().cpus(2).build();
//! let a = host.add_job("a", JobSpec::miscellaneous(), Box::new(Spin)).unwrap();
//! let b = host.add_job("b", JobSpec::miscellaneous(), Box::new(Spin)).unwrap();
//! host.advance(SimTime::from_secs(2));
//! // Least-loaded fit put the hogs on different CPUs, so together they
//! // consume more than one CPU's worth of time.
//! assert_ne!(host.cpu_of(a), host.cpu_of(b));
//! let total = host.cpu_used(a) + host.cpu_used(b);
//! assert!(total > host.now());
//! ```
//!
//! ## Direct backend APIs
//!
//! The concrete backends remain available — `sim::Simulation::new` and
//! `realtime::RealTimeExecutor::new` are the same engines the [`api`]
//! builder constructs, and [`api::Host::as_any`] (or `dyn Host`'s
//! `as_sim` / `as_wall_clock`) downcasts a built host back to them for
//! backend-specific queries.  New code should go through [`api`]; the
//! direct paths stay for one release of deprecation-by-documentation.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use rrs_analysis as analysis;
pub use rrs_api as api;
pub use rrs_core as core;
pub use rrs_feedback as feedback;
pub use rrs_metrics as metrics;
pub use rrs_queue as queue;
pub use rrs_realtime as realtime;
pub use rrs_scenario as scenario;
pub use rrs_scheduler as scheduler;
pub use rrs_sim as sim;
pub use rrs_telemetry as telemetry;
pub use rrs_workloads as workloads;
