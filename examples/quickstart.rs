//! Quickstart: scheduling a producer/consumer pipeline without reservations.
//!
//! A producer with a fixed reservation feeds a consumer through a shared
//! bounded buffer.  The consumer never specifies a proportion or a period —
//! the feedback controller discovers both from the queue fill level.
//!
//! The program is written once against `realrate::api::Host` and then run
//! twice: 20 simulated seconds on the deterministic simulator, and two
//! *real* seconds on the wall-clock executor — same workload, same
//! controller, different backend.
//!
//! Run with `cargo run --release --example quickstart`.  Pass
//! `--telemetry [path]` to record a structured trace of the simulator run
//! and export it as Chrome trace-event JSON (default
//! `quickstart_trace.json`, loadable at <https://ui.perfetto.dev>)
//! alongside the counter summary.

use realrate::api::{Host, Runtime, SimTime};
use realrate::metrics::plot::{ascii_plot, PlotConfig};
use realrate::telemetry::TelemetryConfig;
use realrate::workloads::{PipelineConfig, PulsePipeline};

/// Installs the pipeline, runs it for `duration`, and reports what the
/// controller discovered — on whatever backend `host` is.
fn demo(host: &mut dyn Host, duration: SimTime) {
    // The producer holds a 200 ‰ reservation, the consumer is a real-rate
    // job managed entirely by the controller.
    let handles = PulsePipeline::install(host, PipelineConfig::steady(2.5e-5));

    println!(
        "running {duration} of the pipeline on the {} backend...",
        host.backend()
    );
    host.advance(duration);

    let consumer_alloc = host.allocation_ppt(handles.consumer);
    let producer_alloc = host.allocation_ppt(handles.producer);
    println!("producer reservation : {producer_alloc} ‰ (fixed by the application)");
    println!("consumer allocation  : {consumer_alloc} ‰ (discovered by the controller)");

    // Job handles carry the controller's dense slot, so every layer can
    // query the control plane in O(1) without id lookups.
    let class = host
        .controller()
        .job_of(handles.consumer.slot)
        .and_then(|id| host.controller().job_class(id));
    println!(
        "consumer class       : {} ({})",
        class.unwrap(),
        handles.consumer.slot
    );
    println!();
}

fn main() {
    // `--telemetry [path]` turns on structured trace recording for the
    // simulator run and exports it for Perfetto.
    let mut args = std::env::args().skip(1);
    let mut trace_path: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--telemetry" => {
                trace_path = Some(
                    args.next()
                        .unwrap_or_else(|| "quickstart_trace.json".to_string()),
                );
            }
            other => {
                eprintln!("error: unknown argument '{other}'");
                eprintln!("usage: quickstart [--telemetry [trace.json]]");
                std::process::exit(2);
            }
        }
    }

    // Backend one: the paper's machine, simulated — 20 simulated seconds
    // finish in milliseconds and reproduce bit for bit.
    let mut builder = Runtime::sim();
    if trace_path.is_some() {
        builder = builder.telemetry(TelemetryConfig::default());
    }
    let mut sim = builder.build();
    demo(sim.as_mut(), SimTime::from_secs(20));

    if let Some(fill) = sim.trace().get("fill/pipeline") {
        println!("queue fill level over time (target is 0.5):");
        print!(
            "{}",
            ascii_plot(
                fill,
                PlotConfig {
                    y_min: Some(0.0),
                    y_max: Some(1.0),
                    ..PlotConfig::default()
                }
            )
        );
        println!();
    }
    if let Some(alloc) = sim.trace().get("alloc/consumer") {
        println!("consumer allocation over time (parts per thousand):");
        print!("{}", ascii_plot(alloc, PlotConfig::default()));
        println!();
    }

    if let Some(path) = &trace_path {
        let recorder = sim
            .telemetry_recorder()
            .expect("--telemetry installed a recorder");
        std::fs::write(path, recorder.chrome_trace_json()).expect("trace path is writable");
        println!("wrote Chrome trace-event JSON to {path} (load it at https://ui.perfetto.dev)");
        println!("telemetry counter summary:");
        println!("{}", sim.telemetry().summary_json());
        println!();
    }

    // Backend two: the identical program on real OS threads.  Two real
    // seconds is enough for the controller to find the same answer the
    // simulator found — within wall-clock tolerance, without per-app
    // tuning.
    let mut wall = Runtime::wall_clock().build();
    demo(wall.as_mut(), SimTime::from_secs(2));

    println!(
        "One host API, two backends: the controller discovered the consumer's\n\
         allocation from queue fill on both, with no backend-specific code."
    );
}
