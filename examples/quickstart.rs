//! Quickstart: scheduling a producer/consumer pipeline without reservations.
//!
//! A producer with a fixed reservation feeds a consumer through a shared
//! bounded buffer.  The consumer never specifies a proportion or a period —
//! the feedback controller discovers both from the queue fill level.
//!
//! Run with `cargo run --release --example quickstart`.

use realrate::metrics::plot::{ascii_plot, PlotConfig};
use realrate::sim::{SimConfig, Simulation};
use realrate::workloads::{PipelineConfig, PulsePipeline};

fn main() {
    let mut sim = Simulation::new(SimConfig::default());

    // Install the pipeline: the producer holds a 200 ‰ reservation, the
    // consumer is a real-rate job managed entirely by the controller.
    let handles = PulsePipeline::install(&mut sim, PipelineConfig::steady(2.5e-5));

    println!("running 20 simulated seconds of the pipeline...");
    sim.run_for(20.0);

    let consumer_alloc = sim.current_allocation_ppt(handles.consumer);
    let producer_alloc = sim.current_allocation_ppt(handles.producer);
    println!("producer reservation : {producer_alloc} ‰ (fixed by the application)");
    println!("consumer allocation  : {consumer_alloc} ‰ (discovered by the controller)");

    // Job handles carry the controller's dense slot, so every layer can
    // query the control plane in O(1) without id lookups.
    let class = sim
        .controller()
        .job_of(handles.consumer.slot)
        .and_then(|id| sim.controller().job_class(id));
    println!(
        "consumer class       : {} ({})",
        class.unwrap(),
        handles.consumer.slot
    );

    if let Some(fill) = sim.trace().get("fill/pipeline") {
        println!();
        println!("queue fill level over time (target is 0.5):");
        print!(
            "{}",
            ascii_plot(
                fill,
                PlotConfig {
                    y_min: Some(0.0),
                    y_max: Some(1.0),
                    ..PlotConfig::default()
                }
            )
        );
    }
    if let Some(alloc) = sim.trace().get("alloc/consumer") {
        println!();
        println!("consumer allocation over time (parts per thousand):");
        print!("{}", ascii_plot(alloc, PlotConfig::default()));
    }

    println!();
    println!(
        "controller ran {} times costing {:.1} ms of CPU in total",
        sim.stats().controller_invocations,
        sim.stats().controller_cost_us / 1000.0
    );
}
