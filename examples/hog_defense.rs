//! Defence against CPU monopolisation (§1, §4.4): a misbehaving job that
//! tries to consume the whole machine cannot starve an interactive job or a
//! real-rate pipeline, because squishing guarantees every job a share and
//! progress pressure routes CPU to the jobs that are falling behind.
//!
//! Run with `cargo run --release --example hog_defense`.

use realrate::api::{JobSpec, Runtime, SimTime};
use realrate::workloads::{CpuHog, InteractiveJob, PipelineConfig, PulsePipeline};

fn main() {
    let mut host = Runtime::sim().build();

    // A well-behaved real-rate pipeline and an interactive editor.
    let pipeline = PulsePipeline::install(host.as_mut(), PipelineConfig::steady(2.5e-5));
    let editor = host
        .add_job(
            "editor",
            JobSpec::miscellaneous(),
            Box::new(InteractiveJob::typist()),
        )
        .unwrap();

    // Ten hostile hogs, each trying to take everything.
    let mut hogs = Vec::new();
    for i in 0..10 {
        hogs.push(
            host.add_job(
                &format!("hog{i}"),
                JobSpec::miscellaneous(),
                Box::new(CpuHog::new()),
            )
            .unwrap(),
        );
    }

    host.advance(SimTime::from_secs(30));

    let consumer_rate = host
        .trace()
        .get("rate/consumer")
        .and_then(|s| s.window_mean(15.0, 30.0))
        .unwrap_or(0.0);
    let keystrokes = host
        .trace()
        .get("rate/editor")
        .and_then(|s| s.window_mean(15.0, 30.0))
        .unwrap_or(0.0);

    println!("denial-of-service defence");
    println!("-------------------------");
    println!("pipeline consumer throughput : {consumer_rate:.0} bytes/s (producer offers 2000)");
    println!("editor keystrokes handled    : {keystrokes:.1} per second (typist offers 5)");
    println!(
        "pipeline consumer allocation : {} ‰",
        host.allocation_ppt(pipeline.consumer)
    );
    println!(
        "editor allocation            : {} ‰",
        host.allocation_ppt(editor)
    );
    let hog_total: u32 = hogs.iter().map(|h| host.allocation_ppt(*h)).sum();
    println!("ten hogs share               : {hog_total} ‰ between them");
    println!();
    println!(
        "squish events: {}  quality exceptions: {}",
        host.stats().squish_events,
        host.stats().quality_exceptions
    );
    println!();
    println!(
        "The hogs absorb only the CPU left over after the jobs with real rate\n\
         requirements made their progress; no job starved and no priorities were needed."
    );
}
