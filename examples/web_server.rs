//! A real-rate web server (§3.2 "Server"): requests arrive from the network
//! into a bounded backlog and the server thread must be given just enough
//! CPU to keep up with the offered load — which changes over the run.
//!
//! Run with `cargo run --release --example web_server`.

use realrate::api::{JobSpec, Runtime, SimTime};
use realrate::metrics::plot::{ascii_plot, PlotConfig};
use realrate::workloads::{CpuHog, ServerConfig, WebServer};

fn main() {
    let mut host = Runtime::sim().build();

    // 100 requests/second at 1 Mcycle each: about a quarter of the 400 MHz
    // simulated CPU.
    let config = ServerConfig::default();
    println!(
        "offered load: {:.0} req/s × {:.1} Mcycles/request",
        config.arrival_rate_hz,
        config.cycles_per_request / 1e6
    );
    let (_network, server) = WebServer::install(host.as_mut(), config);

    // A batch job competes for the CPU the whole time.
    host.add_job("batch", JobSpec::miscellaneous(), Box::new(CpuHog::new()))
        .expect("miscellaneous jobs are always admitted");

    host.advance(SimTime::from_secs(30));

    println!();
    println!(
        "server allocation discovered by the controller: {} ‰",
        host.allocation_ppt(server)
    );
    if let Some(rate) = host.trace().get("rate/server") {
        let served = rate.window_mean(10.0, 30.0).unwrap_or(0.0);
        println!(
            "sustained service rate: {served:.1} req/s (offered {:.0})",
            config.arrival_rate_hz
        );
        print!("{}", ascii_plot(rate, PlotConfig::default()));
    }
    if let Some(fill) = host.trace().get("fill/server-backlog") {
        println!();
        println!("request backlog fill level:");
        print!(
            "{}",
            ascii_plot(
                fill,
                PlotConfig {
                    y_min: Some(0.0),
                    y_max: Some(1.0),
                    ..PlotConfig::default()
                }
            )
        );
    }
    println!();
    println!(
        "the batch job soaked up the remaining CPU without starving the server: \
         quality exceptions raised = {}",
        host.stats().quality_exceptions
    );
}
