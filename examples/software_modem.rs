//! The software modem from §1 of the paper: an isochronous device that
//! must process a sample batch every 10 ms or the line drops.
//!
//! The example runs the same modem twice against three CPU hogs: once with
//! the reservation the paper recommends for devices with known
//! requirements, and once as a plain best-effort job.  The reservation
//! keeps the miss ratio at zero; best effort drops batches.
//!
//! Run with `cargo run --release --example software_modem`.

use realrate::api::{JobSpec, Runtime, SimTime};
use realrate::workloads::{CpuHog, ModemConfig, SoftwareModem};

fn run(reserved: bool) -> (u64, u64) {
    let mut host = Runtime::sim().build();
    let config = ModemConfig::default();
    let (_handle, stats) = if reserved {
        SoftwareModem::install_with_reservation(host.as_mut(), config)
    } else {
        SoftwareModem::install_best_effort(host.as_mut(), config)
    };
    for i in 0..3 {
        host.add_job(
            &format!("hog{i}"),
            JobSpec::miscellaneous(),
            Box::new(CpuHog::new()),
        )
        .expect("misc jobs are always admitted");
    }
    host.advance(SimTime::from_secs(20));
    (stats.batches_completed(), stats.deadlines_missed())
}

fn main() {
    let config = ModemConfig::default();
    println!(
        "software modem: one {:.1} kcycle batch every {} ms, competing with 3 CPU hogs",
        config.cycles_per_batch / 1e3,
        config.batch_period_us / 1000
    );
    println!();

    let (done, missed) = run(true);
    println!(
        "with a reservation ({} ‰ over {} ms):",
        config.required_proportion(400e6, 1.2).ppt(),
        config.batch_period_us / 1000
    );
    println!("  batches completed: {done}");
    println!("  deadlines missed : {missed}");

    let (done, missed) = run(false);
    println!();
    println!("best effort (no reservation, no progress metric):");
    println!("  batches completed: {done}");
    println!("  deadlines missed : {missed}");
    println!();
    println!(
        "Applications with known requirements bypass the adaptive controller by\n\
         specifying proportion and period; everything else is inferred from progress."
    );
}
