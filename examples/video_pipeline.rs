//! The multimedia pipeline from §4.4 of the paper: source → decoder →
//! renderer, where the decoder needs roughly ten times the CPU of the
//! renderer.  All stages have "the same priority" (none — there are no
//! priorities); the controller discovers the asymmetric CPU needs from the
//! two queue fill levels.
//!
//! Run with `cargo run --release --example video_pipeline`.

use realrate::api::{Runtime, SimTime};
use realrate::metrics::plot::{ascii_plot, PlotConfig};
use realrate::workloads::{VideoPipeline, VideoPipelineConfig};

fn main() {
    let mut host = Runtime::sim().build();
    let config = VideoPipelineConfig::default();
    println!(
        "video pipeline: {} fps, decode {:.1} Mcycles/frame, render {:.1} Mcycles/frame",
        config.fps,
        config.decode_cycles_per_frame / 1e6,
        config.render_cycles_per_frame / 1e6
    );

    let handles = VideoPipeline::install(host.as_mut(), config);
    host.advance(SimTime::from_secs(30));

    println!();
    println!("allocations discovered by the controller (parts per thousand):");
    println!(
        "  source   : {:>4} ‰ (fixed reservation)",
        host.allocation_ppt(handles.source)
    );
    println!("  decoder  : {:>4} ‰", host.allocation_ppt(handles.decoder));
    println!(
        "  renderer : {:>4} ‰",
        host.allocation_ppt(handles.renderer)
    );

    if let Some(rate) = host.trace().get("rate/renderer") {
        let fps = rate.window_mean(10.0, 30.0).unwrap_or(0.0);
        println!();
        println!("sustained frame rate at the renderer: {fps:.1} fps");
        print!("{}", ascii_plot(rate, PlotConfig::default()));
    }
    if let Some(alloc) = host.trace().get("alloc/decoder") {
        println!();
        println!("decoder allocation over time:");
        print!("{}", ascii_plot(alloc, PlotConfig::default()));
    }
}
