//! Multicore: the machine layer spreading a fleet of jobs over N CPUs.
//!
//! The paper's prototype ran on a single 400 MHz Pentium II.  The machine
//! layer generalises the same dispatcher to N per-CPU run queues behind
//! the identical API: the control pipeline's Place stage assigns each job
//! a CPU by least-loaded fit at admission and rebalances with
//! threshold-triggered migration, while every CPU advances in lockstep on
//! the shared clock.
//!
//! Run with `cargo run --release --example multicore`.

use realrate::api::{JobHandle, JobSpec, Period, Proportion, Runtime, SimTime};
use realrate::workloads::CpuHog;

fn main() {
    const CPUS: usize = 4;
    let mut host = Runtime::sim().cpus(CPUS).build();

    // A real-time reservation: admitted against one specific CPU and
    // pinned there (real-time jobs never migrate).
    let rt = host
        .add_job(
            "rt",
            JobSpec::real_time(Proportion::from_ppt(400), Period::from_millis(10)),
            Box::new(CpuHog::new()),
        )
        .expect("an empty 4-CPU machine admits 400 ‰");

    // Six adaptive hogs: no reservations, no priorities — the controller
    // discovers that each can use a CPU's worth and the Place stage
    // spreads them over the machine.
    let mut hogs = Vec::new();
    for i in 0..6 {
        hogs.push(
            host.add_job(
                &format!("hog{i}"),
                JobSpec::miscellaneous(),
                Box::new(CpuHog::new()),
            )
            .expect("misc jobs are always admitted"),
        );
    }

    println!("running 10 simulated seconds on a {CPUS}-CPU machine...");
    host.advance(SimTime::from_secs(10));

    println!(
        "\n{:<8} {:>6} {:>10} {:>12}",
        "job", "cpu", "alloc ‰", "cpu-time ms"
    );
    let report = |name: &str, h: JobHandle| {
        println!(
            "{:<8} {:>6} {:>10} {:>12.1}",
            name,
            host.cpu_of(h).map(|c| c.to_string()).unwrap_or_default(),
            host.allocation_ppt(h),
            host.cpu_used(h).as_micros() as f64 / 1e3,
        );
    };
    report("rt", rt);
    for (i, h) in hogs.iter().enumerate() {
        report(&format!("hog{i}"), *h);
    }

    // The simulator keeps the per-CPU breakdown itself — no need to
    // recompute machine-wide aggregates from job handles.
    let stats = host.stats();
    let machine = host.machine();
    println!(
        "\n{:<6} {:>8} {:>10} {:>9} {:>9}",
        "cpu", "load ‰", "used ms", "idle ms", "migr +/-"
    );
    for (i, cpu) in stats.per_cpu.iter().enumerate() {
        println!(
            "cpu{i:<3} {:>8} {:>10.1} {:>9.1} {:>5}/{}",
            machine.cpu_load_ppt(realrate::api::CpuId(i as u32)),
            cpu.used_us as f64 / 1e3,
            cpu.idle_us as f64 / 1e3,
            cpu.migrations_in,
            cpu.migrations_out,
        );
    }

    let throughput = stats.total_used_us() as f64 / host.now().as_micros() as f64;
    println!(
        "\naggregate throughput : {throughput:.2} CPUs of work \
         (one CPU could deliver at most 1.0)"
    );
    println!("cross-CPU migrations : {}", stats.migrations);
    println!(
        "machine-wide grants  : {} ‰ across {CPUS} CPUs",
        machine.total_reserved_ppt()
    );
    assert!(throughput > 2.0, "a 4-CPU machine must beat one CPU");
}
