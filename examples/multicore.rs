//! Multicore: the machine layer spreading a fleet of jobs over N CPUs.
//!
//! The paper's prototype ran on a single 400 MHz Pentium II.  The machine
//! layer generalises the same dispatcher to N per-CPU run queues behind
//! the identical API: the control pipeline's Place stage assigns each job
//! a CPU by least-loaded fit at admission and rebalances with
//! threshold-triggered migration, while every CPU advances in lockstep on
//! the shared clock.
//!
//! Run with `cargo run --release --example multicore`.

use realrate::core::JobSpec;
use realrate::scheduler::{Period, Proportion};
use realrate::sim::{SimConfig, Simulation};
use realrate::workloads::CpuHog;

fn main() {
    const CPUS: u32 = 4;
    let mut sim = Simulation::new(SimConfig::default().with_cpus(CPUS));

    // A real-time reservation: admitted against one specific CPU and
    // pinned there (real-time jobs never migrate).
    let rt = sim
        .add_job(
            "rt",
            JobSpec::real_time(Proportion::from_ppt(400), Period::from_millis(10)),
            Box::new(CpuHog::new()),
        )
        .expect("an empty 4-CPU machine admits 400 ‰");

    // Six adaptive hogs: no reservations, no priorities — the controller
    // discovers that each can use a CPU's worth and the Place stage
    // spreads them over the machine.
    let mut hogs = Vec::new();
    for i in 0..6 {
        hogs.push(
            sim.add_job(
                &format!("hog{i}"),
                JobSpec::miscellaneous(),
                Box::new(CpuHog::new()),
            )
            .expect("misc jobs are always admitted"),
        );
    }

    println!("running 10 simulated seconds on a {CPUS}-CPU machine...");
    sim.run_for(10.0);

    println!(
        "\n{:<8} {:>6} {:>10} {:>12}",
        "job", "cpu", "alloc ‰", "cpu-time ms"
    );
    let report = |name: &str, h: realrate::sim::JobHandle| {
        println!(
            "{:<8} {:>6} {:>10} {:>12.1}",
            name,
            sim.cpu_of(h).map(|c| c.to_string()).unwrap_or_default(),
            sim.current_allocation_ppt(h),
            sim.cpu_used_us(h) as f64 / 1e3,
        );
    };
    report("rt", rt);
    for (i, h) in hogs.iter().enumerate() {
        report(&format!("hog{i}"), *h);
    }

    // The simulator keeps the per-CPU breakdown itself — no need to
    // recompute machine-wide aggregates from job handles.
    let stats = sim.stats();
    let machine = sim.machine();
    println!(
        "\n{:<6} {:>8} {:>10} {:>9} {:>9}",
        "cpu", "load ‰", "used ms", "idle ms", "migr +/-"
    );
    for (i, cpu) in stats.per_cpu.iter().enumerate() {
        println!(
            "cpu{i:<3} {:>8} {:>10.1} {:>9.1} {:>5}/{}",
            machine.cpu_load_ppt(realrate::scheduler::CpuId(i as u32)),
            cpu.used_us as f64 / 1e3,
            cpu.idle_us as f64 / 1e3,
            cpu.migrations_in,
            cpu.migrations_out,
        );
    }

    let total_used: u64 = stats.per_cpu.iter().map(|c| c.used_us).sum();
    let throughput = total_used as f64 / sim.now_micros() as f64;
    println!(
        "\naggregate throughput : {throughput:.2} CPUs of work \
         (one CPU could deliver at most 1.0)"
    );
    println!("cross-CPU migrations : {}", stats.migrations);
    println!(
        "machine-wide grants  : {} ‰ across {CPUS} CPUs",
        machine.total_reserved_ppt()
    );
    assert!(throughput > 2.0, "a 4-CPU machine must beat one CPU");
}
