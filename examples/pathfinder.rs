//! The Mars Pathfinder scenario from §2 of the paper, replayed under
//! progress-based scheduling.
//!
//! Under fixed priorities, a high-priority task blocked on a resource held
//! by a low-priority task starved by medium-priority tasks — classic
//! priority inversion.  Under proportion/period scheduling driven by
//! progress there are no priorities to invert: the data-bus task and the
//! meteorological task are stages of one pipeline whose allocations follow
//! their progress, and the medium-"priority" communication load is just
//! another job that cannot starve anyone because every job always holds a
//! non-zero proportion.
//!
//! Run with `cargo run --release --example pathfinder`.

use realrate::api::{JobSpec, Runtime, SimTime};
use realrate::queue::{BoundedBuffer, JobKey, Role};
use realrate::sim::{RunResult, WorkModel};
use realrate::workloads::CpuHog;
use std::sync::Arc;

/// The low-"priority" meteorological task: produces readings into the bus
/// queue, a few hundred kilocycles per reading.
struct WeatherTask {
    queue: Arc<BoundedBuffer<u64>>,
    cycles_left: f64,
    produced: u64,
}

impl WorkModel for WeatherTask {
    fn run(&mut self, _now: u64, quantum_us: u64, cpu_hz: f64) -> RunResult {
        let mut cycles = quantum_us as f64 * cpu_hz / 1e6;
        let mut used = 0.0;
        while cycles > 0.0 {
            if self.cycles_left <= 0.0 {
                self.cycles_left = 400_000.0;
            }
            if cycles < self.cycles_left {
                self.cycles_left -= cycles;
                used += cycles;
                break;
            }
            cycles -= self.cycles_left;
            used += self.cycles_left;
            self.cycles_left = 0.0;
            if self.queue.try_push(self.produced).is_err() {
                let us = (used / cpu_hz * 1e6) as u64;
                return RunResult::blocked_after(us.min(quantum_us));
            }
            self.produced += 1;
        }
        RunResult::ran(((used / cpu_hz * 1e6) as u64).clamp(1, quantum_us))
    }

    fn poll_unblock(&mut self, _now: u64) -> bool {
        !self.queue.is_full()
    }

    fn progress_counter(&self) -> Option<f64> {
        Some(self.produced as f64)
    }
}

/// The high-"priority" bus-management task: consumes readings; each one
/// costs a little CPU.  On the real spacecraft this task missing its
/// deadline reset the system.
struct BusTask {
    queue: Arc<BoundedBuffer<u64>>,
    cycles_left: f64,
    consumed: u64,
}

impl WorkModel for BusTask {
    fn run(&mut self, _now: u64, quantum_us: u64, cpu_hz: f64) -> RunResult {
        let mut cycles = quantum_us as f64 * cpu_hz / 1e6;
        let mut used = 0.0;
        loop {
            if self.cycles_left <= 0.0 {
                match self.queue.try_pop() {
                    Some(_) => self.cycles_left = 200_000.0,
                    None => {
                        let us = (used / cpu_hz * 1e6) as u64;
                        return RunResult::blocked_after(us.min(quantum_us));
                    }
                }
            }
            if cycles < self.cycles_left {
                self.cycles_left -= cycles;
                used += cycles;
                break;
            }
            cycles -= self.cycles_left;
            used += self.cycles_left;
            self.cycles_left = 0.0;
            self.consumed += 1;
        }
        RunResult::ran(((used / cpu_hz * 1e6) as u64).clamp(1, quantum_us))
    }

    fn poll_unblock(&mut self, _now: u64) -> bool {
        !self.queue.is_empty()
    }

    fn progress_counter(&self) -> Option<f64> {
        Some(self.consumed as f64)
    }
}

fn main() {
    let mut host = Runtime::sim().build();
    let bus_queue = Arc::new(BoundedBuffer::new("bus", 32));

    let weather = host
        .add_job(
            "weather",
            JobSpec::real_rate(),
            Box::new(WeatherTask {
                queue: Arc::clone(&bus_queue),
                cycles_left: 0.0,
                produced: 0,
            }),
        )
        .unwrap();
    let bus = host
        .add_job(
            "bus",
            JobSpec::real_rate(),
            Box::new(BusTask {
                queue: Arc::clone(&bus_queue),
                cycles_left: 0.0,
                consumed: 0,
            }),
        )
        .unwrap();
    // The "medium-priority" communication tasks that starved the weather
    // task on the real spacecraft are just CPU hogs here.
    for i in 0..3 {
        host.add_job(
            &format!("comm{i}"),
            JobSpec::miscellaneous(),
            Box::new(CpuHog::new()),
        )
        .unwrap();
    }

    let registry = host.registry();
    registry.register(JobKey(weather.job.0), Role::Producer, bus_queue.clone());
    registry.register(JobKey(bus.job.0), Role::Consumer, bus_queue);

    host.advance(SimTime::from_secs(30));

    let weather_rate = host
        .trace()
        .get("rate/weather")
        .and_then(|s| s.window_mean(10.0, 30.0))
        .unwrap_or(0.0);
    let bus_rate = host
        .trace()
        .get("rate/bus")
        .and_then(|s| s.window_mean(10.0, 30.0))
        .unwrap_or(0.0);

    println!("Mars Pathfinder replay under real-rate scheduling");
    println!("--------------------------------------------------");
    println!("weather readings produced : {weather_rate:.1} per second");
    println!("bus transactions completed: {bus_rate:.1} per second");
    println!(
        "weather allocation        : {} ‰",
        host.allocation_ppt(weather)
    );
    println!("bus allocation            : {} ‰", host.allocation_ppt(bus));
    println!();
    if bus_rate > 0.0 && weather_rate > 0.0 {
        println!(
            "Neither pipeline stage starved despite three competing CPU hogs: the\n\
             dependency is expressed through the shared queue, so there is no priority\n\
             to invert and no watchdog reset."
        );
    } else {
        println!("Unexpected: a pipeline stage made no progress.");
    }
}
