//! Scenarios: declare a workload, run it, check its SLOs.
//!
//! Builds a custom declarative scenario — a web server plus hogs under a
//! flash-crowd arrival process, with a mid-run CPU hot-add — runs it, and
//! prints the SLO verdicts.  The spec's `backend` field picks the engine
//! (`realrate::api::Backend`): the default is the deterministic
//! simulator; `scenario_runner --smoke --backend wall_clock` runs the
//! wall-clock tolerance corpus on real OS threads through the same
//! machinery.  The built-in corpus is available through
//! `cargo run --release --bin scenario_runner`.
//!
//! Run with `cargo run --release --example scenarios`.

use realrate::scenario::{run_scenario, ArrivalProcess, Slo};
use realrate::scenario::{ArrivalStream, Member, Phase, ScenarioSpec, TransientJob};

fn main() {
    let mut spec = ScenarioSpec::named(
        "example_flash",
        "web server + hogs surviving a flash crowd, scaling from 2 to 4 CPUs",
    );
    spec.seed = 7;
    spec.cpus = 2;
    spec.members.push(Member::WebServer {
        rate_hz: 150.0,
        mcycles_per_request: 1.0,
        backlog: 64,
    });
    spec.members.push(Member::Hog { name: "h0".into() });
    spec.members.push(Member::Hog { name: "h1".into() });
    spec.streams.push(ArrivalStream {
        name: "crowd".into(),
        process: ArrivalProcess::FlashCrowd {
            base_hz: 1.0,
            at_s: 3.0,
            duration_s: 2.0,
            spike_hz: 20.0,
        },
        job: TransientJob::Worker {
            mcycles: 10.0,
            lifetime_s: 1.0,
        },
    });
    spec.phases.push(Phase::steady("before", 3.0));
    let mut surge = Phase::steady("surge", 3.0);
    surge.cpus = Some(4);
    spec.phases.push(surge);
    spec.phases.push(Phase::steady("after", 3.0));
    spec.slos.push(Slo::FillBand {
        queue: "server-backlog".into(),
        min: 0.0,
        max: 0.9,
        warmup_s: 2.0,
    });
    spec.slos.push(Slo::FairShare { min_ratio: 0.5 });
    spec.slos.push(Slo::MinThroughput { min_cpus: 1.0 });

    let report = run_scenario(&spec).expect("spec validates");
    println!(
        "{} [{} backend]: {:.1} s, {} CPUs at the end, {} jobs spawned, {} departed\n",
        report.scenario,
        report.backend,
        report.elapsed_s,
        report.cpus,
        report.jobs.spawned,
        report.jobs.departed
    );
    for (i, cpu) in report.stats.per_cpu.iter().enumerate() {
        println!(
            "  cpu{i}: {:>8.1} ms used, {:>8.1} ms idle, {}/{} migrations in/out",
            cpu.used_us as f64 / 1e3,
            cpu.idle_us as f64 / 1e3,
            cpu.migrations_in,
            cpu.migrations_out,
        );
    }
    println!();
    for slo in &report.slos {
        println!(
            "  {} {}",
            if slo.passed { "ok  " } else { "FAIL" },
            slo.description
        );
    }
    assert!(report.passed, "every SLO must hold");
    println!("\nall SLOs hold");
}
